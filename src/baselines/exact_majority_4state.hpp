// Classic 4-state always-correct exact majority for k = 2 (cancel/convert
// design of Mertzios et al. / Gąsieniec et al.). Serves as the historical
// baseline the plurality literature generalizes: Circles restricted to k = 2
// competes against this protocol in the comparison experiments.
//
// States: STRONG_c ("an uncancelled vote for c") and WEAK_c ("a follower
// currently believing c"), c ∈ {0, 1}.
//   STRONG_0 + STRONG_1 -> WEAK_0 + WEAK_1   (votes cancel)
//   STRONG_c + WEAK_¬c  -> STRONG_c + WEAK_c (winner converts followers)
// With no tie, #STRONG_0 − #STRONG_1 is invariant under cancellation, so
// only majority-color strong agents survive and convert every follower:
// always correct under weak fairness, reaching a silent configuration.
// On ties all strong agents cancel and mixed followers freeze — the protocol
// cannot decide ties, which is exactly why the tie experiments exist.
#pragma once

#include "pp/protocol.hpp"

namespace circles::baselines {

class ExactMajority4State final : public pp::Protocol {
 public:
  static constexpr pp::StateId kStrong0 = 0;
  static constexpr pp::StateId kStrong1 = 1;
  static constexpr pp::StateId kWeak0 = 2;
  static constexpr pp::StateId kWeak1 = 3;

  std::uint64_t num_states() const override { return 4; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override;
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "exact_majority_4state"; }
  std::string state_name(pp::StateId state) const override;
};

}  // namespace circles::baselines
