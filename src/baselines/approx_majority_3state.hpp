// The 3-state approximate majority protocol (Angluin–Aspnes–Eisenstat 2008)
// for k = 2. Converges in O(n log n) interactions under the uniform random
// scheduler but is only correct with high probability — for small margins it
// decides the *minority* with non-negligible probability. Experiment E12
// measures that error rate; the contrast motivates always-correct protocols
// like Circles.
//
// States: X (vote 0), Y (vote 1), B (blank).
//   X + Y -> initiator keeps its vote, responder goes blank
//   vote + B -> blank adopts the vote
#pragma once

#include "pp/protocol.hpp"

namespace circles::baselines {

class ApproxMajority3State final : public pp::Protocol {
 public:
  static constexpr pp::StateId kX = 0;
  static constexpr pp::StateId kY = 1;
  static constexpr pp::StateId kBlank = 2;

  std::uint64_t num_states() const override { return 3; }
  std::uint32_t num_colors() const override { return 2; }
  pp::StateId input(pp::ColorId color) const override;
  /// Blank agents report color 0 by convention; all measured final
  /// configurations are uniform X or uniform Y, so the convention never
  /// affects a converged result.
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "approx_majority_3state"; }
  std::string state_name(pp::StateId state) const override;
};

}  // namespace circles::baselines
