// State-complexity accounting for the E5 headline table:
// the paper's k^3 against the literature's O(k^7) upper bound
// [Gąsieniec et al. 2017] and Ω(k^2) lower bound [Natale & Ramezani 2019],
// alongside the exact state counts of every protocol in this repository.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace circles::baselines {

struct StateComplexityRow {
  std::string protocol;
  /// Exact state count, or 0 when the value overflows uint64 at this k.
  std::uint64_t states;
  /// Closed-form rendering, e.g. "k^3" or "2k^2(k+1)".
  std::string formula;
  bool always_correct;
  /// Colors this implementation can actually run at (0 = unbounded in k).
  std::uint32_t runnable_k_cap;
};

/// All rows for a given k: Circles, the baselines, the extensions, and the
/// two literature bounds (which have no runnable implementation).
std::vector<StateComplexityRow> state_complexity_table(std::uint32_t k);

/// Individual closed forms (exposed for tests).
std::uint64_t circles_states(std::uint32_t k);            // k^3
std::uint64_t tie_report_states(std::uint32_t k);         // 2 k^2 (k+1)
std::uint64_t ordering_states(std::uint32_t k);           // 2 k^2
std::uint64_t unordered_circles_states(std::uint32_t k);  // 2 k^3 (k+1)
std::uint64_t ghmss_upper_bound(std::uint32_t k);         // k^7 (literature)
std::uint64_t plurality_lower_bound(std::uint32_t k);     // k^2 (literature)

}  // namespace circles::baselines
