// Always-correct deterministic exact plurality via a product of pairwise
// cancel/convert games — the comparator standing in for the O(k^7)
// construction of Gąsieniec et al. (see DESIGN.md, substitution 1).
//
// Every unordered color pair {i, j} hosts an independent majority game.
// An agent of color c is a *player* in the k−1 games containing c and a
// *spectator* in the rest:
//   player sub-state:    STRONG (uncancelled vote for c), or WEAK believing
//                        i or j (3 values);
//   spectator sub-state: believes i or j (2 values).
// Game rules (independently per game, on every interaction):
//   STRONG_i + STRONG_j          -> both WEAK, each believing its own color
//   STRONG_x + WEAK/spectator ¬x -> the other now believes x
//   anything else                -> null (so tied games freeze silently)
//
// The plurality winner μ satisfies m_μ > m_j for every j, so every game
// {μ, j} resolves to μ: eventually every agent believes μ in all k−1 of μ's
// games. Games between two losers may tie and freeze with mixed beliefs,
// which is harmless: the output scans colors in ascending order for one that
// wins all its games in the agent's view, and μ is eventually the unique
// such color in every view (every other color loses its game against μ).
//
// State count: k · 3^(k−1) · 2^((k−1)(k−2)/2) — exponential in k, against
// Circles' k^3. The state-complexity table (E5) and convergence comparison
// (E6) quantify the gap. Capped at k <= 6 (~1.5M states).
#pragma once

#include <cstdint>
#include <vector>

#include "pp/protocol.hpp"

namespace circles::baselines {

class PairwisePlurality final : public pp::Protocol {
 public:
  explicit PairwisePlurality(std::uint32_t k);

  std::uint64_t num_states() const override { return num_states_; }
  std::uint32_t num_colors() const override { return k_; }
  pp::StateId input(pp::ColorId color) const override;
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "pairwise_plurality"; }
  std::string state_name(pp::StateId state) const override;

  std::uint32_t k() const { return k_; }
  std::uint32_t num_games() const { return static_cast<std::uint32_t>(games_.size()); }

  /// The closed-form state count (also valid for k beyond the runnable cap,
  /// until it overflows uint64 at k = 11).
  static std::uint64_t state_count_formula(std::uint32_t k);

  // --- decoded representation, exposed for tests ---
  enum class PlayerSub : std::uint8_t { kStrong = 0, kWeakLo = 1, kWeakHi = 2 };
  enum class SpectatorSub : std::uint8_t { kBelieveLo = 0, kBelieveHi = 1 };

  struct Decoded {
    pp::ColorId color;
    // For each game index g: if the agent plays game g, player[g] is
    // meaningful; otherwise spectator[g] is. The other entry is zero.
    std::vector<std::uint8_t> sub;  // raw digit per game
  };
  Decoded decode(pp::StateId state) const;
  pp::StateId encode(const Decoded& decoded) const;

  struct Game {
    pp::ColorId lo;
    pp::ColorId hi;
  };
  const Game& game(std::uint32_t index) const { return games_[index]; }
  bool plays(pp::ColorId color, std::uint32_t game_index) const;

  /// The color this agent currently believes wins game `game_index`.
  pp::ColorId belief(const Decoded& decoded, std::uint32_t game_index) const;

 private:
  std::uint32_t radix(pp::ColorId color, std::uint32_t game_index) const {
    return plays(color, game_index) ? 3 : 2;
  }

  std::uint32_t k_;
  std::vector<Game> games_;
  std::uint64_t per_color_states_;
  std::uint64_t num_states_;
};

}  // namespace circles::baselines
