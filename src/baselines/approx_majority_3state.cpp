#include "baselines/approx_majority_3state.hpp"

#include "util/check.hpp"

namespace circles::baselines {

pp::StateId ApproxMajority3State::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < 2);
  return color == 0 ? kX : kY;
}

pp::OutputSymbol ApproxMajority3State::output(pp::StateId state) const {
  return state == kY ? 1 : 0;
}

pp::Transition ApproxMajority3State::transition(pp::StateId initiator,
                                                pp::StateId responder) const {
  const bool init_vote = initiator == kX || initiator == kY;
  const bool resp_vote = responder == kX || responder == kY;
  if (init_vote && resp_vote && initiator != responder) {
    return {initiator, kBlank};
  }
  if (init_vote && responder == kBlank) return {initiator, initiator};
  if (resp_vote && initiator == kBlank) return {responder, responder};
  return {initiator, responder};
}

std::string ApproxMajority3State::state_name(pp::StateId state) const {
  switch (state) {
    case kX:
      return "X";
    case kY:
      return "Y";
    case kBlank:
      return "B";
    default:
      return "invalid";
  }
}

}  // namespace circles::baselines
