#include "baselines/pairwise_plurality.hpp"

#include "util/check.hpp"

namespace circles::baselines {

PairwisePlurality::PairwisePlurality(std::uint32_t k) : k_(k) {
  CIRCLES_CHECK_MSG(k >= 1, "need at least one color");
  CIRCLES_CHECK_MSG(k <= 6,
                    "pairwise plurality state space is exponential; capped at "
                    "k = 6 (~1.5M states)");
  for (pp::ColorId i = 0; i < k; ++i) {
    for (pp::ColorId j = i + 1; j < k; ++j) games_.push_back({i, j});
  }
  per_color_states_ = 1;
  // All colors share the same per-color state count: k-1 ternary digits and
  // (k-1)(k-2)/2 binary digits, merely at color-dependent positions.
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    per_color_states_ *= radix(/*color=*/0, g);
  }
  num_states_ = per_color_states_ * k_;
}

std::uint64_t PairwisePlurality::state_count_formula(std::uint32_t k) {
  CIRCLES_CHECK_MSG(k >= 1 && k <= 10, "formula overflows uint64 beyond k=10");
  std::uint64_t out = k;
  for (std::uint32_t i = 0; i + 1 < k; ++i) out *= 3;
  const std::uint64_t binary_games =
      k >= 2 ? static_cast<std::uint64_t>(k - 1) * (k - 2) / 2 : 0;
  for (std::uint64_t i = 0; i < binary_games; ++i) out *= 2;
  return out;
}

bool PairwisePlurality::plays(pp::ColorId color,
                              std::uint32_t game_index) const {
  const Game& g = games_[game_index];
  return g.lo == color || g.hi == color;
}

PairwisePlurality::Decoded PairwisePlurality::decode(pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states_);
  Decoded out;
  out.color = static_cast<pp::ColorId>(state / per_color_states_);
  std::uint64_t rest = state % per_color_states_;
  out.sub.resize(games_.size());
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    const std::uint32_t r = radix(out.color, g);
    out.sub[g] = static_cast<std::uint8_t>(rest % r);
    rest /= r;
  }
  return out;
}

pp::StateId PairwisePlurality::encode(const Decoded& decoded) const {
  std::uint64_t rest = 0;
  for (std::uint32_t g = static_cast<std::uint32_t>(games_.size()); g-- > 0;) {
    const std::uint32_t r = radix(decoded.color, g);
    CIRCLES_DCHECK(decoded.sub[g] < r);
    rest = rest * r + decoded.sub[g];
  }
  return static_cast<pp::StateId>(decoded.color * per_color_states_ + rest);
}

pp::StateId PairwisePlurality::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  Decoded d;
  d.color = color;
  d.sub.assign(games_.size(), 0);
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    if (plays(color, g)) {
      d.sub[g] = static_cast<std::uint8_t>(PlayerSub::kStrong);
    } else {
      d.sub[g] = static_cast<std::uint8_t>(SpectatorSub::kBelieveLo);
    }
  }
  return encode(d);
}

pp::ColorId PairwisePlurality::belief(const Decoded& decoded,
                                      std::uint32_t game_index) const {
  const Game& game = games_[game_index];
  if (plays(decoded.color, game_index)) {
    switch (static_cast<PlayerSub>(decoded.sub[game_index])) {
      case PlayerSub::kStrong:
        return decoded.color;
      case PlayerSub::kWeakLo:
        return game.lo;
      case PlayerSub::kWeakHi:
        return game.hi;
    }
  }
  return static_cast<SpectatorSub>(decoded.sub[game_index]) ==
                 SpectatorSub::kBelieveLo
             ? game.lo
             : game.hi;
}

pp::OutputSymbol PairwisePlurality::output(pp::StateId state) const {
  const Decoded d = decode(state);
  // At most one candidate can win all of its games in a given view (the game
  // between two candidates disqualifies one of them), so the ascending scan
  // is deterministic. output() is not on the simulation hot path.
  for (pp::ColorId candidate = 0; candidate < k_ && k_ > 1; ++candidate) {
    bool wins_all = true;
    for (std::uint32_t g = 0; g < games_.size() && wins_all; ++g) {
      if (games_[g].lo == candidate || games_[g].hi == candidate) {
        wins_all = belief(d, g) == candidate;
      }
    }
    if (wins_all) return candidate;
  }
  return d.color;  // pre-convergence fallback: announce own color
}

pp::Transition PairwisePlurality::transition(pp::StateId initiator,
                                             pp::StateId responder) const {
  Decoded a = decode(initiator);
  Decoded b = decode(responder);

  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    const Game& game = games_[g];
    const bool a_plays = plays(a.color, g);
    const bool b_plays = plays(b.color, g);

    if (a_plays && b_plays) {
      const auto a_sub = static_cast<PlayerSub>(a.sub[g]);
      const auto b_sub = static_cast<PlayerSub>(b.sub[g]);
      if (a_sub == PlayerSub::kStrong && b_sub == PlayerSub::kStrong &&
          a.color != b.color) {
        // Cancellation: each becomes weak believing its own color.
        a.sub[g] = static_cast<std::uint8_t>(
            a.color == game.lo ? PlayerSub::kWeakLo : PlayerSub::kWeakHi);
        b.sub[g] = static_cast<std::uint8_t>(
            b.color == game.lo ? PlayerSub::kWeakLo : PlayerSub::kWeakHi);
        continue;
      }
      if (a_sub == PlayerSub::kStrong && b_sub != PlayerSub::kStrong &&
          belief(b, g) != a.color) {
        b.sub[g] = static_cast<std::uint8_t>(
            a.color == game.lo ? PlayerSub::kWeakLo : PlayerSub::kWeakHi);
        continue;
      }
      if (b_sub == PlayerSub::kStrong && a_sub != PlayerSub::kStrong &&
          belief(a, g) != b.color) {
        a.sub[g] = static_cast<std::uint8_t>(
            b.color == game.lo ? PlayerSub::kWeakLo : PlayerSub::kWeakHi);
        continue;
      }
      continue;
    }

    // Player meets spectator: only a STRONG player reshapes spectator belief;
    // weak players stay quiet so tied games freeze into silence.
    if (a_plays && !b_plays) {
      if (static_cast<PlayerSub>(a.sub[g]) == PlayerSub::kStrong &&
          belief(b, g) != a.color) {
        b.sub[g] = static_cast<std::uint8_t>(a.color == game.lo
                                                 ? SpectatorSub::kBelieveLo
                                                 : SpectatorSub::kBelieveHi);
      }
      continue;
    }
    if (b_plays && !a_plays) {
      if (static_cast<PlayerSub>(b.sub[g]) == PlayerSub::kStrong &&
          belief(a, g) != b.color) {
        a.sub[g] = static_cast<std::uint8_t>(b.color == game.lo
                                                 ? SpectatorSub::kBelieveLo
                                                 : SpectatorSub::kBelieveHi);
      }
      continue;
    }
    // Two spectators: null.
  }

  return {encode(a), encode(b)};
}

std::string PairwisePlurality::state_name(pp::StateId state) const {
  const Decoded d = decode(state);
  std::string out = "c" + std::to_string(d.color) + "[";
  for (std::uint32_t g = 0; g < games_.size(); ++g) {
    if (g > 0) out += ",";
    if (plays(d.color, g)) {
      switch (static_cast<PlayerSub>(d.sub[g])) {
        case PlayerSub::kStrong:
          out += "S";
          break;
        case PlayerSub::kWeakLo:
          out += "w" + std::to_string(games_[g].lo);
          break;
        case PlayerSub::kWeakHi:
          out += "w" + std::to_string(games_[g].hi);
          break;
      }
    } else {
      out += "b" + std::to_string(belief(d, g));
    }
  }
  out += "]";
  return out;
}

}  // namespace circles::baselines
