#include "baselines/exact_majority_4state.hpp"

#include "util/check.hpp"

namespace circles::baselines {

pp::StateId ExactMajority4State::input(pp::ColorId color) const {
  CIRCLES_DCHECK(color < 2);
  return color == 0 ? kStrong0 : kStrong1;
}

pp::OutputSymbol ExactMajority4State::output(pp::StateId state) const {
  switch (state) {
    case kStrong0:
    case kWeak0:
      return 0;
    case kStrong1:
    case kWeak1:
      return 1;
    default:
      CIRCLES_CHECK_MSG(false, "invalid 4-state id");
      return 0;
  }
}

pp::Transition ExactMajority4State::transition(pp::StateId initiator,
                                               pp::StateId responder) const {
  auto is_strong = [](pp::StateId s) { return s == kStrong0 || s == kStrong1; };
  auto color_of = [this](pp::StateId s) { return output(s); };

  if (is_strong(initiator) && is_strong(responder) &&
      color_of(initiator) != color_of(responder)) {
    // Cancellation: each vote becomes a follower of its own color.
    return {initiator == kStrong0 ? kWeak0 : kWeak1,
            responder == kStrong0 ? kWeak0 : kWeak1};
  }
  if (is_strong(initiator) && !is_strong(responder) &&
      color_of(responder) != color_of(initiator)) {
    return {initiator, color_of(initiator) == 0 ? kWeak0 : kWeak1};
  }
  if (is_strong(responder) && !is_strong(initiator) &&
      color_of(initiator) != color_of(responder)) {
    return {color_of(responder) == 0 ? kWeak0 : kWeak1, responder};
  }
  return {initiator, responder};
}

std::string ExactMajority4State::state_name(pp::StateId state) const {
  switch (state) {
    case kStrong0:
      return "S0";
    case kStrong1:
      return "S1";
    case kWeak0:
      return "w0";
    case kWeak1:
      return "w1";
    default:
      return "invalid";
  }
}

}  // namespace circles::baselines
