// Executable form of Lemma 3.6: extract the bra-ket multiset of a
// configuration and compare it against the greedy-set prediction.
#pragma once

#include <string>

#include "core/circles_protocol.hpp"
#include "core/greedy_sets.hpp"
#include "pp/population.hpp"

namespace circles::core {

/// The multiset of bra-kets across all agents (out fields ignored).
BraKetMultiset braket_multiset(const pp::Population& population,
                               const CirclesProtocol& protocol);

struct DecompositionCheck {
  bool matches = false;
  BraKetMultiset expected;
  BraKetMultiset actual;

  /// Diff rendering for test failures.
  std::string describe() const;
};

/// Compares the population's bra-kets against predict_stable_brakets(counts).
/// Only meaningful once the run is silent (Lemma 3.6 is a post-stabilization
/// statement).
DecompositionCheck verify_decomposition(
    const pp::Population& population, const CirclesProtocol& protocol,
    std::span<const std::uint64_t> color_counts);

}  // namespace circles::core
