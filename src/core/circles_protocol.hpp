// The Circles protocol (paper §2) — relative majority with exactly k^3 states.
//
// State: (bra, ket, out) ∈ [0,k)^3. Input color i starts as ⟨i|i⟩ with
// out = i; the output is the out field. On interaction:
//   1. the two agents swap kets iff that strictly decreases the minimum of
//      their two bra-ket weights;
//   2. if either agent is then diagonal ⟨i|i⟩, both set out := i.
// The paper's rule (2) is ambiguous when both agents are diagonal with
// different colors (only possible before stabilization); we resolve it by
// initiator precedence, which is deterministic and preserves all proofs.
#pragma once

#include <cstdint>
#include <string>

#include "core/braket.hpp"
#include "pp/protocol.hpp"

namespace circles::core {

class CirclesProtocol final : public pp::Protocol {
 public:
  /// Builds the protocol for k >= 1 colors. k is capped so that k^3 fits
  /// comfortably in StateId (k <= 1024 gives ~10^9 states; practical
  /// simulations use far less).
  explicit CirclesProtocol(std::uint32_t k);

  std::uint64_t num_states() const override {
    return static_cast<std::uint64_t>(k_) * k_ * k_;
  }
  std::uint32_t num_colors() const override { return k_; }
  pp::StateId input(ColorId color) const override;
  pp::OutputSymbol output(pp::StateId state) const override;
  pp::Transition transition(pp::StateId initiator,
                            pp::StateId responder) const override;
  std::string name() const override { return "circles"; }
  std::string state_name(pp::StateId state) const override;

  std::uint32_t k() const { return k_; }

  /// Decoded view of a state.
  struct Fields {
    BraKet braket;
    ColorId out;
  };
  Fields decode(pp::StateId state) const;
  pp::StateId encode(BraKet braket, ColorId out) const;

  /// The exchange rule in isolation: would ⟨a⟩ and ⟨b⟩ swap kets?
  /// Exposed for tests and the extension layers, which must apply the exact
  /// same rule.
  bool would_exchange(BraKet a, BraKet b) const;

 private:
  std::uint32_t k_;
};

}  // namespace circles::core
