#include "core/potential.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace circles::core {

WeightVector::WeightVector(std::vector<std::uint32_t> sorted_weights)
    : weights_(std::move(sorted_weights)) {
  CIRCLES_DCHECK(std::is_sorted(weights_.begin(), weights_.end()));
}

WeightVector WeightVector::of(const pp::Population& population,
                              const CirclesProtocol& protocol) {
  std::vector<std::uint32_t> weights;
  weights.reserve(population.size());
  for (const pp::StateId s : population.agents()) {
    weights.push_back(weight(protocol.decode(s).braket, protocol.k()));
  }
  std::sort(weights.begin(), weights.end());
  return WeightVector(std::move(weights));
}

std::strong_ordering WeightVector::operator<=>(
    const WeightVector& other) const {
  return std::lexicographical_compare_three_way(
      weights_.begin(), weights_.end(), other.weights_.begin(),
      other.weights_.end());
}

std::uint64_t WeightVector::total_energy() const {
  std::uint64_t total = 0;
  for (const auto w : weights_) total += w;
  return total;
}

std::uint32_t WeightVector::min_weight() const {
  CIRCLES_CHECK(!weights_.empty());
  return weights_.front();
}

}  // namespace circles::core
