#include "core/greedy_sets.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace circles::core {

std::vector<std::vector<ColorId>> greedy_sets(
    std::span<const std::uint64_t> counts) {
  std::uint64_t q = 0;
  for (const auto c : counts) q = std::max(q, c);

  std::vector<std::vector<ColorId>> sets;
  sets.reserve(q);
  for (std::uint64_t p = 1; p <= q; ++p) {
    std::vector<ColorId> set;
    for (ColorId color = 0; color < counts.size(); ++color) {
      if (counts[color] >= p) set.push_back(color);
    }
    CIRCLES_DCHECK(!set.empty());
    sets.push_back(std::move(set));  // ascending by construction
  }
  return sets;
}

BraKetMultiset circle_brakets(std::span<const ColorId> sorted_set) {
  CIRCLES_CHECK_MSG(!sorted_set.empty(), "circle of an empty set");
  CIRCLES_DCHECK(std::is_sorted(sorted_set.begin(), sorted_set.end()));
  BraKetMultiset out;
  if (sorted_set.size() == 1) {
    out.add({sorted_set[0], sorted_set[0]});
    return out;
  }
  for (std::size_t l = 0; l < sorted_set.size(); ++l) {
    const ColorId from = sorted_set[l];
    const ColorId to = sorted_set[(l + 1) % sorted_set.size()];
    out.add({from, to});
  }
  return out;
}

BraKetMultiset predict_stable_brakets(std::span<const std::uint64_t> counts) {
  BraKetMultiset out;
  for (const auto& set : greedy_sets(counts)) {
    out = out.union_with(circle_brakets(set));
  }
  return out;
}

std::optional<ColorId> unique_plurality_winner(
    std::span<const std::uint64_t> counts) {
  std::optional<ColorId> best;
  std::uint64_t best_count = 0;
  bool tied = false;
  for (ColorId color = 0; color < counts.size(); ++color) {
    if (counts[color] > best_count) {
      best = color;
      best_count = counts[color];
      tied = false;
    } else if (counts[color] == best_count && best_count > 0) {
      tied = true;
    }
  }
  if (tied || best_count == 0) return std::nullopt;
  return best;
}

std::uint64_t predicted_diagonal_count(
    std::span<const std::uint64_t> counts) {
  // G_p is a singleton exactly for second_highest < p <= highest, and only
  // singletons contribute a diagonal to ∪ f(G_p).
  std::uint64_t highest = 0;
  std::uint64_t second = 0;
  for (const auto c : counts) {
    if (c >= highest) {
      second = highest;
      highest = c;
    } else if (c > second) {
      second = c;
    }
  }
  return highest - second;
}

}  // namespace circles::core
