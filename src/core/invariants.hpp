// Runtime checkers for the paper's invariants, as engine monitors.
//
//  * BraKetInvariantMonitor — Lemma 3.3: for every color i, #bras ⟨i| equals
//    #kets |i⟩ in every reachable configuration; additionally the bra
//    multiset never changes at all (bras are immutable by construction).
//  * PotentialDescentMonitor — Theorem 3.4: every ket exchange strictly
//    decreases the sorted weight vector lexicographically. Also tracks the
//    scalar energy Σw to demonstrate it is not monotone.
//  * KetExchangeCounter — counts exchanges vs. pure output updates; the
//    stabilization experiments read exchange totals from it.
//
// Monitors accumulate violation counts rather than aborting, so tests can
// assert exact zero and print context on failure.
#pragma once

#include <cstdint>
#include <vector>

#include "core/circles_protocol.hpp"
#include "core/potential.hpp"
#include "pp/monitor.hpp"

namespace circles::core {

/// A view of Circles-compatible protocols: any protocol whose states embed a
/// bra-ket (Circles itself and the extension layers). The monitors only need
/// the bra-ket projection.
class BraKetView {
 public:
  virtual ~BraKetView() = default;
  virtual BraKet braket_of(pp::StateId state) const = 0;
  virtual std::uint32_t k() const = 0;
};

/// Adapter for the plain Circles protocol.
class CirclesBraKetView final : public BraKetView {
 public:
  explicit CirclesBraKetView(const CirclesProtocol& protocol)
      : protocol_(protocol) {}
  BraKet braket_of(pp::StateId state) const override {
    return protocol_.decode(state).braket;
  }
  std::uint32_t k() const override { return protocol_.k(); }

 private:
  const CirclesProtocol& protocol_;
};

class BraKetInvariantMonitor final : public pp::Monitor {
 public:
  explicit BraKetInvariantMonitor(const BraKetView& view) : view_(view) {}

  void on_start(const pp::Population& population,
                const pp::Protocol& protocol) override;
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;

  std::uint64_t violations() const { return violations_; }

 private:
  void recount_and_check(const pp::Population& population);

  const BraKetView& view_;
  std::vector<std::uint64_t> initial_bra_counts_;
  std::uint64_t violations_ = 0;
};

class PotentialDescentMonitor final : public pp::Monitor {
 public:
  explicit PotentialDescentMonitor(const BraKetView& view) : view_(view) {}

  void on_start(const pp::Population& population,
                const pp::Protocol& protocol) override;
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;

  std::uint64_t exchanges() const { return exchanges_; }
  /// Exchanges that failed to strictly decrease the ordinal potential.
  std::uint64_t descent_violations() const { return descent_violations_; }
  /// Exchanges after which the scalar energy Σw did NOT decrease — expected
  /// to be nonzero; evidence that the ordinal potential is necessary.
  std::uint64_t scalar_energy_increases() const {
    return scalar_energy_increases_;
  }
  /// Interactions that changed state without a ket exchange (output updates).
  std::uint64_t output_only_changes() const { return output_only_changes_; }

 private:
  WeightVector current(const pp::Population& population) const;

  const BraKetView& view_;
  WeightVector potential_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t descent_violations_ = 0;
  std::uint64_t scalar_energy_increases_ = 0;
  std::uint64_t output_only_changes_ = 0;
};

class KetExchangeCounter final : public pp::Monitor {
 public:
  explicit KetExchangeCounter(const BraKetView& view) : view_(view) {}

  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;

  std::uint64_t exchanges() const { return exchanges_; }
  std::uint64_t diagonal_creations() const { return diagonal_creations_; }
  std::uint64_t diagonal_destructions() const { return diagonal_destructions_; }

 private:
  const BraKetView& view_;
  std::uint64_t exchanges_ = 0;
  std::uint64_t diagonal_creations_ = 0;
  std::uint64_t diagonal_destructions_ = 0;
};

/// Records (exchange index -> scalar energy and min weight) for energy plots.
class EnergyTraceMonitor final : public pp::Monitor {
 public:
  explicit EnergyTraceMonitor(const BraKetView& view) : view_(view) {}

  struct Sample {
    std::uint64_t step;
    std::uint64_t total_energy;
    std::uint32_t min_weight;
  };

  void on_start(const pp::Population& population,
                const pp::Protocol& protocol) override;
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;

  const std::vector<Sample>& samples() const { return samples_; }

 private:
  void sample(std::uint64_t step, const pp::Population& population);

  const BraKetView& view_;
  std::vector<Sample> samples_;
};

}  // namespace circles::core
