// Greedy independent sets (Definition 3.1), circle bra-ket sets
// (Definition 3.5), and the Lemma 3.6 prediction of the stable configuration.
//
// Partition the input multiset into G_1 ⊇ G_2 ⊇ … ⊇ G_q where G_p contains
// every color with multiplicity >= p. The stable bra-ket multiset is exactly
// ∪_p f(G_p), where f maps a set to the "circle" of bra-kets between its
// consecutive sorted elements (wrapping around). This makes the stable
// configuration a pure function of the input counts — independent of the
// schedule — which the decomposition experiments verify bit-exactly.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "core/braket.hpp"
#include "util/multiset.hpp"

namespace circles::core {

using BraKetMultiset = util::CountedMultiset<BraKet>;

/// The greedy independent sets G_1..G_q for the given per-color counts
/// (counts.size() == k). Each set is sorted ascending; q == max count.
/// Colors with count zero never appear.
std::vector<std::vector<ColorId>> greedy_sets(
    std::span<const std::uint64_t> counts);

/// f(G): the circle bra-kets of one sorted set (Definition 3.5).
/// A singleton {g} maps to {⟨g|g⟩}; larger sets map to the ring
/// ⟨g_0|g_1⟩, ⟨g_1|g_2⟩, …, ⟨g_m|g_0⟩.
BraKetMultiset circle_brakets(std::span<const ColorId> sorted_set);

/// The full Lemma 3.6 prediction: ∪_p f(G_p).
BraKetMultiset predict_stable_brakets(std::span<const std::uint64_t> counts);

/// The unique relative-majority winner, or nullopt on a tie (or empty input).
std::optional<ColorId> unique_plurality_winner(
    std::span<const std::uint64_t> counts);

/// Number of diagonal bra-kets the stable configuration will contain; equals
/// (max count − second-highest count), and 0 iff the input is tied. Exposed
/// because the TieReport extension's correctness argument rests on it.
std::uint64_t predicted_diagonal_count(std::span<const std::uint64_t> counts);

}  // namespace circles::core
