#include "core/decomposition.hpp"

namespace circles::core {

BraKetMultiset braket_multiset(const pp::Population& population,
                               const CirclesProtocol& protocol) {
  BraKetMultiset out;
  for (const pp::StateId s : population.present_states()) {
    const auto fields = protocol.decode(s);
    out.add(fields.braket, population.count(s));
  }
  return out;
}

std::string DecompositionCheck::describe() const {
  if (matches) return "decomposition matches";
  std::string out = "decomposition mismatch\n  expected: ";
  out += expected.to_string();
  out += "\n  actual:   ";
  out += actual.to_string();
  out += "\n  missing:  ";
  out += expected.difference(actual).to_string();
  out += "\n  extra:    ";
  out += actual.difference(expected).to_string();
  return out;
}

DecompositionCheck verify_decomposition(
    const pp::Population& population, const CirclesProtocol& protocol,
    std::span<const std::uint64_t> color_counts) {
  DecompositionCheck check;
  check.expected = predict_stable_brakets(color_counts);
  check.actual = braket_multiset(population, protocol);
  check.matches = check.expected == check.actual;
  return check;
}

}  // namespace circles::core
