// Bra-kets and their weights (paper §2).
//
// An agent's working memory is a bra-ket ⟨bra|ket⟩ of colors. Its *weight* is
//   w(⟨i|j⟩) = k          if i == j   (diagonal; maximal energy)
//              (j−i) mod k otherwise  (cyclic distance from bra to ket)
// Ket exchanges that strictly decrease the minimum weight of the interacting
// pair are the protocol's only moves — "energy minimization".
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "pp/types.hpp"

namespace circles::core {

using pp::ColorId;

struct BraKet {
  ColorId bra;
  ColorId ket;

  bool diagonal() const { return bra == ket; }

  auto operator<=>(const BraKet&) const = default;
};

/// w(⟨i|j⟩) for the color universe [0, k). Returns values in [1, k]:
/// diagonals weigh k, off-diagonals weigh the cyclic gap (j − i) mod k >= 1.
inline std::uint32_t weight(BraKet braket, std::uint32_t k) {
  if (braket.bra == braket.ket) return k;
  // Both colors live in [0, k), so add k before subtracting to stay unsigned.
  return (braket.ket + k - braket.bra) % k;
}

/// The energy-minimization rule of §2: would swapping the two kets strictly
/// decrease the minimum of the two weights? Shared by Circles and every
/// extension layer so the exchange semantics cannot drift apart.
inline bool exchange_decreases_min(BraKet a, BraKet b, std::uint32_t k) {
  const std::uint32_t before = weight(a, k) < weight(b, k) ? weight(a, k) : weight(b, k);
  const std::uint32_t wa = weight({a.bra, b.ket}, k);
  const std::uint32_t wb = weight({b.bra, a.ket}, k);
  const std::uint32_t after = wa < wb ? wa : wb;
  return after < before;
}

inline std::string to_string(BraKet braket) {
  return "<" + std::to_string(braket.bra) + "|" + std::to_string(braket.ket) +
         ">";
}

inline std::ostream& operator<<(std::ostream& os, BraKet braket) {
  return os << to_string(braket);
}

}  // namespace circles::core
