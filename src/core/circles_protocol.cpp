#include "core/circles_protocol.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace circles::core {

CirclesProtocol::CirclesProtocol(std::uint32_t k) : k_(k) {
  CIRCLES_CHECK_MSG(k >= 1, "Circles needs at least one color");
  CIRCLES_CHECK_MSG(k <= 1024, "k^3 state space would overflow StateId");
}

pp::StateId CirclesProtocol::input(ColorId color) const {
  CIRCLES_DCHECK(color < k_);
  return encode({color, color}, color);
}

pp::OutputSymbol CirclesProtocol::output(pp::StateId state) const {
  return state % k_;
}

CirclesProtocol::Fields CirclesProtocol::decode(pp::StateId state) const {
  CIRCLES_DCHECK(state < num_states());
  const ColorId out = state % k_;
  state /= k_;
  const ColorId ket = state % k_;
  const ColorId bra = state / k_;
  return {{bra, ket}, out};
}

pp::StateId CirclesProtocol::encode(BraKet braket, ColorId out) const {
  CIRCLES_DCHECK(braket.bra < k_ && braket.ket < k_ && out < k_);
  return (braket.bra * k_ + braket.ket) * k_ + out;
}

bool CirclesProtocol::would_exchange(BraKet a, BraKet b) const {
  return exchange_decreases_min(a, b, k_);
}

pp::Transition CirclesProtocol::transition(pp::StateId initiator,
                                           pp::StateId responder) const {
  Fields a = decode(initiator);
  Fields b = decode(responder);

  // Step 1: exchange kets iff it strictly decreases the minimum weight.
  if (would_exchange(a.braket, b.braket)) {
    std::swap(a.braket.ket, b.braket.ket);
  }

  // Step 2: a diagonal agent broadcasts its color as the current winner.
  // Initiator precedence resolves the (transient) both-diagonal ambiguity.
  if (a.braket.diagonal()) {
    a.out = b.out = a.braket.bra;
  } else if (b.braket.diagonal()) {
    a.out = b.out = b.braket.bra;
  }

  return {encode(a.braket, a.out), encode(b.braket, b.out)};
}

std::string CirclesProtocol::state_name(pp::StateId state) const {
  const Fields f = decode(state);
  return to_string(f.braket) + ":" + std::to_string(f.out);
}

}  // namespace circles::core
