// The stabilization potential of Theorem 3.4 in executable form.
//
// The paper defines g(C) = ω^{n−1}·w_1 + … + ω·w_{n−1} + w_n over the
// ascending-sorted agent weights w_1 <= … <= w_n. Ordinal comparison of such
// sums is exactly lexicographic comparison of the tuples (w_1, …, w_n)
// (DESIGN.md §5.1), so the potential is represented as a sorted
// std::vector<uint32_t> compared lexicographically — no ordinal arithmetic.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "core/circles_protocol.hpp"
#include "pp/population.hpp"

namespace circles::core {

/// Ascending-sorted agent weights; the order-isomorphic image of g(C).
class WeightVector {
 public:
  WeightVector() = default;
  explicit WeightVector(std::vector<std::uint32_t> sorted_weights);

  /// Extracts and sorts all agent weights of a Circles configuration.
  static WeightVector of(const pp::Population& population,
                         const CirclesProtocol& protocol);

  /// Lexicographic order == ordinal order of g(C).
  std::strong_ordering operator<=>(const WeightVector& other) const;
  bool operator==(const WeightVector& other) const = default;

  /// Scalar total energy Σ w_i. NOT monotone under the protocol (E4 shows
  /// this empirically); provided to demonstrate why the ordinal potential is
  /// required for the stabilization proof.
  std::uint64_t total_energy() const;

  std::uint32_t min_weight() const;
  const std::vector<std::uint32_t>& weights() const { return weights_; }

 private:
  std::vector<std::uint32_t> weights_;
};

}  // namespace circles::core
