#include "core/invariants.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace circles::core {

namespace {

/// Did this event swap kets (as opposed to only updating outputs)?
bool is_exchange(const BraKetView& view, const pp::InteractionEvent& event) {
  return view.braket_of(event.initiator_before) !=
             view.braket_of(event.initiator_after) ||
         view.braket_of(event.responder_before) !=
             view.braket_of(event.responder_after);
}

}  // namespace

void BraKetInvariantMonitor::on_start(const pp::Population& population,
                                      const pp::Protocol&) {
  initial_bra_counts_.assign(view_.k(), 0);
  for (const pp::StateId s : population.agents()) {
    initial_bra_counts_[view_.braket_of(s).bra] += 1;
  }
  recount_and_check(population);
}

void BraKetInvariantMonitor::on_interaction(const pp::InteractionEvent& event,
                                            const pp::Population& population) {
  if (!event.changed()) return;
  recount_and_check(population);
}

void BraKetInvariantMonitor::recount_and_check(
    const pp::Population& population) {
  std::vector<std::uint64_t> bras(view_.k(), 0);
  std::vector<std::uint64_t> kets(view_.k(), 0);
  for (const pp::StateId s : population.present_states()) {
    const BraKet bk = view_.braket_of(s);
    const std::uint64_t count = population.count(s);
    bras[bk.bra] += count;
    kets[bk.ket] += count;
  }
  // Lemma 3.3: #⟨i| == #|i⟩ for all i. Stronger: bras are immutable.
  if (bras != kets || bras != initial_bra_counts_) violations_ += 1;
}

void PotentialDescentMonitor::on_start(const pp::Population& population,
                                       const pp::Protocol&) {
  potential_ = current(population);
}

WeightVector PotentialDescentMonitor::current(
    const pp::Population& population) const {
  std::vector<std::uint32_t> weights;
  weights.reserve(population.size());
  for (const pp::StateId s : population.agents()) {
    weights.push_back(weight(view_.braket_of(s), view_.k()));
  }
  std::sort(weights.begin(), weights.end());
  return WeightVector(std::move(weights));
}

void PotentialDescentMonitor::on_interaction(
    const pp::InteractionEvent& event, const pp::Population& population) {
  if (!event.changed()) return;
  if (!is_exchange(view_, event)) {
    output_only_changes_ += 1;
    return;
  }
  exchanges_ += 1;
  const WeightVector next = current(population);
  if (!(next < potential_)) descent_violations_ += 1;
  if (next.total_energy() >= potential_.total_energy()) {
    scalar_energy_increases_ += 1;
  }
  potential_ = next;
}

void KetExchangeCounter::on_interaction(const pp::InteractionEvent& event,
                                        const pp::Population&) {
  if (!event.changed() || !is_exchange(view_, event)) return;
  exchanges_ += 1;
  const bool diag_before_i = view_.braket_of(event.initiator_before).diagonal();
  const bool diag_after_i = view_.braket_of(event.initiator_after).diagonal();
  const bool diag_before_r = view_.braket_of(event.responder_before).diagonal();
  const bool diag_after_r = view_.braket_of(event.responder_after).diagonal();
  diagonal_creations_ += (!diag_before_i && diag_after_i) ? 1 : 0;
  diagonal_creations_ += (!diag_before_r && diag_after_r) ? 1 : 0;
  diagonal_destructions_ += (diag_before_i && !diag_after_i) ? 1 : 0;
  diagonal_destructions_ += (diag_before_r && !diag_after_r) ? 1 : 0;
}

void EnergyTraceMonitor::on_start(const pp::Population& population,
                                  const pp::Protocol&) {
  samples_.clear();
  sample(0, population);
}

void EnergyTraceMonitor::on_interaction(const pp::InteractionEvent& event,
                                        const pp::Population& population) {
  if (!event.changed() || !is_exchange(view_, event)) return;
  sample(event.step + 1, population);
}

void EnergyTraceMonitor::sample(std::uint64_t step,
                                const pp::Population& population) {
  std::uint64_t total = 0;
  std::uint32_t min_w = view_.k();
  for (const pp::StateId s : population.present_states()) {
    const std::uint32_t w = weight(view_.braket_of(s), view_.k());
    total += w * population.count(s);
    min_w = std::min(min_w, w);
  }
  samples_.push_back({step, total, min_w});
}

}  // namespace circles::core
