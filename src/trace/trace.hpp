// Span tracing + flight recorder.
//
// Two consumers share one event stream:
//
//  * Timelines: per-thread ring buffers of begin/end/instant events drained
//    into Chrome Trace Event Format JSON (load the file in chrome://tracing
//    or https://ui.perfetto.dev) so "where does the time go" is answerable
//    per batch phase, per trial, per dense epoch, per pool worker.
//  * Failure forensics: the same bounded rings double as a flight recorder.
//    When a trial fails (grader fail, exhausted budget, validation abort,
//    uncaught worker exception) the BatchRunner dumps the last-N events plus
//    the full RunSpec string, resolved backend, and per-trial seed as a
//    single greppable `REPRO: sweep --spec='...' --trial-seed=...` line that
//    replays the identical trial standalone.
//
// Design rules, inherited from the metrics layer and load-bearing for the
// determinism contract:
//
//  * Tracing NEVER touches the trial RNG streams or reorders work: spans-on
//    and spans-off runs are bitwise identical on every backend (tested).
//  * Everything keys off a `Tracer*` that defaults to nullptr. Call sites
//    resolve their thread's `TraceBuffer*` once per run or region; with no
//    tracer attached the hot paths compile down to a null-pointer test and
//    a null ScopedSpan never reads the clock.
//  * Emission is owner-thread-only into a lock-free power-of-two ring
//    (per-field relaxed stores, one release store on the write index), so a
//    worker emitting a span never contends with another thread. Readers
//    (export, flight dump) acquire the index and tolerate losing a lap race
//    to a still-running writer — slots carry no pointers a writer could
//    invalidate, only static-string names and integers.
//  * Rings overwrite: a long run keeps its most recent window (the flight
//    recorder semantics) instead of growing without bound. The exporter
//    repairs the resulting orphaned begin/end pairs so the JSON always
//    validates (see write_chrome_trace).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace circles::trace {

struct TracerOptions {
  /// Events retained per thread (rounded up to a power of two). Sized so a
  /// multi-trial batch keeps its setup spans (kernel.compile, batch.trial)
  /// even when pooled stage tasks flood the shared worker threads: the inner
  /// run_threads tasks drain on the same outer pool, so one thread can see
  /// several trials' worth of decimated engine spans (~15k per trial).
  /// ~40 bytes per slot, allocated per registered thread, tracing opt-in.
  std::size_t buffer_capacity = 1 << 16;
  /// Events per flight-recorder dump (most recent first across threads).
  std::size_t flight_recorder_events = 64;
};

/// One drained event. `name`/`arg_name`/`thread_name` stay valid while the
/// owning Tracer is alive; names are static strings by contract.
struct Event {
  const char* name = nullptr;
  const char* arg_name = nullptr;  // nullptr = no args object
  std::uint64_t arg = 0;
  std::uint64_t ts_ns = 0;  // steady-clock nanoseconds since tracer epoch
  std::uint64_t tid = 0;    // real OS thread id where available
  const char* thread_name = nullptr;
  char ph = 0;  // 'B' begin | 'E' end | 'i' instant
};

/// The per-thread ring. Only the owning thread emits; any thread may drain.
class TraceBuffer {
 public:
  TraceBuffer(std::size_t capacity, std::uint64_t tid, std::string name,
              std::chrono::steady_clock::time_point epoch);

  void begin(const char* name) { emit('B', name, nullptr, 0); }
  void begin(const char* name, const char* arg_name, std::uint64_t arg) {
    emit('B', name, arg_name, arg);
  }
  void end(const char* name) { emit('E', name, nullptr, 0); }
  void instant(const char* name) { emit('i', name, nullptr, 0); }
  void instant(const char* name, const char* arg_name, std::uint64_t arg) {
    emit('i', name, arg_name, arg);
  }

  std::uint64_t tid() const { return tid_; }
  const std::string& thread_name() const { return name_; }
  /// Events emitted minus events retained (ring overwrites).
  std::uint64_t dropped() const;

  /// Appends this buffer's retained events (oldest first) to `out`.
  void drain_into(std::vector<Event>& out) const;

 private:
  // One ring slot. Fields are individually-relaxed atomics so a concurrent
  // drain during a lap is an allowed stale read, not a data race; the
  // release store on count_ publishes completed slots.
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<const char*> arg_name{nullptr};
    std::atomic<std::uint64_t> arg{0};
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<char> ph{0};
  };

  void emit(char ph, const char* name, const char* arg_name,
            std::uint64_t arg);

  std::unique_ptr<Slot[]> slots_;
  std::size_t capacity_;
  std::size_t mask_;
  std::atomic<std::uint64_t> count_{0};  // total events ever emitted
  std::uint64_t tid_;
  std::string name_;
  std::chrono::steady_clock::time_point epoch_;
};

/// Everything the flight recorder needs to make a failure reproducible.
struct FailureContext {
  std::string spec;     // full RunSpec string, resolved backend baked in
  std::string backend;  // resolved backend name
  std::uint64_t trial_index = 0;
  std::uint64_t trial_seed = 0;
  std::string reason;         // "grader fail", "budget_exhausted", ...
  std::string verdict;        // "correct=0 silent=0 ..." (empty: no outcome)
  std::string final_outputs;  // space-separated counts (empty: no outcome)
};

/// Owns the per-thread buffers and the export/dump machinery. One Tracer per
/// batch (or per spec under `spans=PATH`); attach via BatchOptions::tracer,
/// SessionBuilder::spans(), or sweep --spans-out.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// This thread's buffer, registering it on first use. `name_hint` labels
  /// the thread in the exported timeline ("worker" becomes "worker-3"); it
  /// is only consulted at registration, so later calls may pass nullptr.
  /// The constructing thread is pre-registered as "main". Lookup after
  /// registration is lock-free (one hash probe into an atomic table).
  TraceBuffer* thread_buffer(const char* name_hint = nullptr);

  /// Snapshot of every buffer's retained events, sorted by timestamp
  /// (stable: same-timestamp events keep per-thread emission order).
  std::vector<Event> drain() const;

  /// Chrome Trace Event Format: a JSON array of {name, ph, ts, pid, tid}
  /// objects with 'M' thread_name metadata, ts in microseconds. Ring
  /// eviction is repaired at export so B/E always match: an 'E' whose 'B'
  /// was overwritten is dropped, an unclosed 'B' gets a synthesized 'E' at
  /// the last retained timestamp.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// Flight-recorder dump: the failure context, the last-N events across
  /// all threads, and the greppable REPRO line. Serialized internally so
  /// concurrent failing trials don't interleave their blocks.
  void dump_failure(const FailureContext& ctx, std::FILE* out) const;

  std::uint64_t events_dropped() const;

 private:
  TraceBuffer* register_thread(std::uint64_t tid, const char* name_hint);

  static constexpr std::size_t kMaxThreads = 256;

  TracerOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  // Lock-free tid -> buffer map: open addressing, tids published with
  // release stores after the buffer pointer, 0 = empty (no OS uses tid 0).
  std::array<std::atomic<std::uint64_t>, kMaxThreads> tids_{};
  std::array<std::atomic<TraceBuffer*>, kMaxThreads> buffers_{};
  mutable std::mutex mutex_;  // registration + dump serialization
  std::vector<std::unique_ptr<TraceBuffer>> owned_;  // guarded by mutex_
  std::size_t registered_ = 0;                       // guarded by mutex_
};

/// Null-safe buffer resolution: the one-liner engines use at run start.
inline TraceBuffer* buffer(Tracer* tracer, const char* name_hint = nullptr) {
  return tracer == nullptr ? nullptr : tracer->thread_buffer(name_hint);
}

/// RAII span over a (possibly null) buffer. A null span never reads the
/// clock — the disabled path is two pointer tests.
class ScopedSpan {
 public:
  ScopedSpan(TraceBuffer* buffer, const char* name)
      : buffer_(buffer), name_(name) {
    if (buffer_ != nullptr) buffer_->begin(name_);
  }
  ScopedSpan(TraceBuffer* buffer, const char* name, const char* arg_name,
             std::uint64_t arg)
      : buffer_(buffer), name_(name) {
    if (buffer_ != nullptr) buffer_->begin(name_, arg_name, arg);
  }
  ~ScopedSpan() {
    if (buffer_ != nullptr) buffer_->end(name_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* name_;
};

}  // namespace circles::trace
