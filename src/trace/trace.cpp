#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <functional>
#include <stdexcept>
#include <thread>

#include "metrics/metrics.hpp"

#ifdef __linux__
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace circles::trace {

namespace {

std::uint64_t os_pid() {
#ifdef __linux__
  return static_cast<std::uint64_t>(::getpid());
#else
  return 1;
#endif
}

std::uint64_t os_tid() {
#ifdef __linux__
  // One syscall per thread lifetime: cached thread-locally because region
  // lambdas resolve their buffer per task.
  static thread_local const std::uint64_t tid =
      static_cast<std::uint64_t>(::syscall(SYS_gettid));
  return tid;
#else
  // Portable fallback: a stable nonzero hash of the std::thread id.
  static thread_local const std::uint64_t tid = [] {
    const std::size_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    return static_cast<std::uint64_t>(h) | 1u;
  }();
  return tid;
#endif
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

// --- TraceBuffer ------------------------------------------------------------

TraceBuffer::TraceBuffer(std::size_t capacity, std::uint64_t tid,
                         std::string name,
                         std::chrono::steady_clock::time_point epoch)
    : capacity_(round_up_pow2(std::max<std::size_t>(capacity, 8))),
      mask_(0),
      tid_(tid),
      name_(std::move(name)),
      epoch_(epoch) {
  mask_ = capacity_ - 1;
  slots_ = std::make_unique<Slot[]>(capacity_);
}

void TraceBuffer::emit(char ph, const char* name, const char* arg_name,
                       std::uint64_t arg) {
  const auto now = std::chrono::steady_clock::now();
  const std::uint64_t ts = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch_)
          .count());
  const std::uint64_t c = count_.load(std::memory_order_relaxed);
  Slot& slot = slots_[c & mask_];
  slot.name.store(name, std::memory_order_relaxed);
  slot.arg_name.store(arg_name, std::memory_order_relaxed);
  slot.arg.store(arg, std::memory_order_relaxed);
  slot.ts_ns.store(ts, std::memory_order_relaxed);
  slot.ph.store(ph, std::memory_order_relaxed);
  count_.store(c + 1, std::memory_order_release);
}

std::uint64_t TraceBuffer::dropped() const {
  const std::uint64_t total = count_.load(std::memory_order_acquire);
  return total > capacity_ ? total - capacity_ : 0;
}

void TraceBuffer::drain_into(std::vector<Event>& out) const {
  const std::uint64_t end = count_.load(std::memory_order_acquire);
  const std::uint64_t start = end > capacity_ ? end - capacity_ : 0;
  out.reserve(out.size() + static_cast<std::size_t>(end - start));
  for (std::uint64_t i = start; i < end; ++i) {
    const Slot& slot = slots_[i & mask_];
    Event event;
    event.name = slot.name.load(std::memory_order_relaxed);
    if (event.name == nullptr) continue;  // lap race with a live writer
    event.arg_name = slot.arg_name.load(std::memory_order_relaxed);
    event.arg = slot.arg.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.ph = slot.ph.load(std::memory_order_relaxed);
    event.tid = tid_;
    event.thread_name = name_.c_str();
    out.push_back(event);
  }
}

// --- Tracer -----------------------------------------------------------------

Tracer::Tracer(TracerOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {
  // The constructing thread is the batch's driver: register it eagerly so
  // phase spans land under a named "main" track.
  (void)register_thread(os_tid(), "main");
}

Tracer::~Tracer() = default;

TraceBuffer* Tracer::thread_buffer(const char* name_hint) {
  const std::uint64_t tid = os_tid();
  std::size_t index = static_cast<std::size_t>(
      (tid * 0x9E3779B97F4A7C15ull) >> 32) % kMaxThreads;
  for (std::size_t probes = 0; probes < kMaxThreads; ++probes) {
    const std::uint64_t seen = tids_[index].load(std::memory_order_acquire);
    if (seen == tid) return buffers_[index].load(std::memory_order_acquire);
    if (seen == 0) return register_thread(tid, name_hint);
    index = (index + 1) % kMaxThreads;
  }
  return register_thread(tid, name_hint);  // table full: recheck under lock
}

TraceBuffer* Tracer::register_thread(std::uint64_t tid,
                                     const char* name_hint) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Double-check: another probe may have registered this thread between the
  // lock-free miss and acquiring the mutex (the owner thread itself cannot
  // race here, but the same tid can reach this through a full-table fall-
  // through).
  for (const auto& owned : owned_) {
    if (owned->tid() == tid) {
      return owned.get();
    }
  }
  std::string name;
  if (registered_ == 0) {
    name = name_hint != nullptr ? name_hint : "main";
  } else {
    name = (name_hint != nullptr ? std::string(name_hint)
                                 : std::string("thread")) +
           "-" + std::to_string(registered_);
  }
  owned_.push_back(std::make_unique<TraceBuffer>(options_.buffer_capacity,
                                                 tid, std::move(name),
                                                 epoch_));
  TraceBuffer* buffer = owned_.back().get();
  registered_ += 1;
  // Publish into the lock-free table: buffer pointer before tid, so a
  // reader that sees the tid always sees the buffer.
  std::size_t index = static_cast<std::size_t>(
      (tid * 0x9E3779B97F4A7C15ull) >> 32) % kMaxThreads;
  for (std::size_t probes = 0; probes < kMaxThreads; ++probes) {
    std::uint64_t expected = 0;
    if (tids_[index].load(std::memory_order_acquire) == 0) {
      buffers_[index].store(buffer, std::memory_order_release);
      if (tids_[index].compare_exchange_strong(expected, tid,
                                               std::memory_order_release)) {
        break;
      }
    }
    index = (index + 1) % kMaxThreads;
  }
  // Table overflow (> kMaxThreads live threads) leaves the buffer owned but
  // unindexed: every lookup from that thread re-takes the mutex. Correct,
  // merely slower, and unreachable at realistic pool widths.
  return buffer;
}

std::vector<Event> Tracer::drain() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& owned : owned_) owned->drain_into(events);
  }
  // Stable: same-timestamp events keep per-thread emission order, which the
  // B/E repair pass relies on for correct nesting.
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns < b.ts_ns;
                   });
  return events;
}

std::uint64_t Tracer::events_dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& owned : owned_) total += owned->dropped();
  return total;
}

namespace {

void append_event_json(std::string& out, const Event& event,
                       std::uint64_t pid, char ph) {
  out += "{\"name\":\"";
  out += metrics::json_escape(event.name);
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"ts\":";
  out += metrics::json_number(static_cast<double>(event.ts_ns) / 1000.0);
  out += ",\"pid\":" + std::to_string(pid);
  out += ",\"tid\":" + std::to_string(event.tid);
  if (ph == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
  if (event.arg_name != nullptr && ph != 'E') {
    out += ",\"args\":{\"";
    out += metrics::json_escape(event.arg_name);
    out += "\":" + std::to_string(event.arg) + "}";
  }
  out += "}";
}

}  // namespace

std::string Tracer::chrome_trace_json() const {
  const std::vector<Event> events = drain();
  const std::uint64_t pid = os_pid();

  // Ring eviction can orphan B/E pairs; repair so the JSON always carries
  // matched pairs per tid: drop an 'E' whose 'B' fell off the ring, close
  // every dangling 'B' with a synthesized 'E' at the last retained
  // timestamp. The per-tid stack walk relies on drain()'s stable ts order.
  std::vector<char> keep(events.size(), 1);
  std::vector<std::pair<std::uint64_t, std::vector<std::size_t>>> stacks;
  const auto stack_for = [&](std::uint64_t tid) -> std::vector<std::size_t>& {
    for (auto& [id, stack] : stacks) {
      if (id == tid) return stack;
    }
    stacks.emplace_back(tid, std::vector<std::size_t>{});
    return stacks.back().second;
  };
  std::uint64_t last_ts = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& event = events[i];
    last_ts = std::max(last_ts, event.ts_ns);
    if (event.ph == 'B') {
      stack_for(event.tid).push_back(i);
    } else if (event.ph == 'E') {
      std::vector<std::size_t>& stack = stack_for(event.tid);
      if (stack.empty()) {
        keep[i] = 0;  // its 'B' was evicted
      } else {
        stack.pop_back();
      }
    }
  }

  std::string out = "[";
  bool first = true;
  const auto sep = [&] {
    if (!first) out += ",";
    out += "\n";
    first = false;
  };

  // Thread-name metadata first so Perfetto labels the tracks.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& owned : owned_) {
      sep();
      out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" +
             std::to_string(pid) + ",\"tid\":" + std::to_string(owned->tid()) +
             ",\"args\":{\"name\":\"" +
             metrics::json_escape(owned->thread_name()) + "\"}}";
    }
  }

  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!keep[i]) continue;
    sep();
    append_event_json(out, events[i], pid, events[i].ph);
  }
  // Synthesized closers, innermost first per thread.
  for (auto& [tid, stack] : stacks) {
    (void)tid;
    while (!stack.empty()) {
      Event closer = events[stack.back()];
      stack.pop_back();
      closer.ts_ns = last_ts;
      sep();
      append_event_json(out, closer, pid, 'E');
    }
  }
  out += "\n]\n";
  return out;
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path);
  if (!file) {
    throw std::runtime_error("trace: cannot open '" + path + "' for writing");
  }
  file << chrome_trace_json();
  if (!file) throw std::runtime_error("trace: write failed for '" + path + "'");
}

void Tracer::dump_failure(const FailureContext& ctx, std::FILE* out) const {
  std::vector<Event> events = drain();
  const std::size_t last = options_.flight_recorder_events;
  const std::size_t start = events.size() > last ? events.size() - last : 0;

  std::string block;
  block += "=== trial failure: " + ctx.reason + " ===\n";
  block += "spec: " + ctx.spec + "\n";
  block += "backend: " + ctx.backend + "\n";
  block += "trial: " + std::to_string(ctx.trial_index) +
           "  seed: " + std::to_string(ctx.trial_seed) + "\n";
  if (!ctx.verdict.empty()) block += "verdict: " + ctx.verdict + "\n";
  if (!ctx.final_outputs.empty()) {
    block += "final outputs: " + ctx.final_outputs + "\n";
  }
  block += "flight recorder (last " +
           std::to_string(events.size() - start) + " of " +
           std::to_string(events.size()) + " retained events):\n";
  char line[256];
  for (std::size_t i = start; i < events.size(); ++i) {
    const Event& event = events[i];
    std::snprintf(line, sizeof(line),
                  "  [+%.6fs tid %" PRIu64 " %s] %c %s",
                  static_cast<double>(event.ts_ns) * 1e-9, event.tid,
                  event.thread_name != nullptr ? event.thread_name : "?",
                  event.ph, event.name);
    block += line;
    if (event.arg_name != nullptr) {
      std::snprintf(line, sizeof(line), " %s=%" PRIu64, event.arg_name,
                    event.arg);
      block += line;
    }
    block += "\n";
  }
  block += "REPRO: sweep --spec='" + ctx.spec +
           "' --trial-seed=" + std::to_string(ctx.trial_seed) + "\n";
  block += "=== end trial failure ===\n";

  // One write under the lock so concurrent failing trials don't interleave.
  std::lock_guard<std::mutex> lock(mutex_);
  std::fputs(block.c_str(), out);
  std::fflush(out);
}

}  // namespace circles::trace
