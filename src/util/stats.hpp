// Streaming and batch summary statistics for experiment aggregation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace circles::util {

/// Welford-style streaming accumulator for mean/variance plus min/max.
class RunningStats {
 public:
  void add(double x);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary with quantiles (keeps a copy of the samples).
struct Summary {
  std::uint64_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double max = 0.0;

  std::string to_string() const;
};

Summary summarize(std::span<const double> samples);

/// Linear-interpolated quantile of a *sorted* sample vector, q in [0,1].
double quantile_sorted(std::span<const double> sorted, double q);

/// Least-squares slope of log(y) vs log(x); useful to read off power-law
/// scaling exponents from sweep results. Requires positive inputs and
/// matching sizes >= 2.
double loglog_slope(std::span<const double> x, std::span<const double> y);

/// Two-sample Kolmogorov–Smirnov distance sup_x |F_a(x) - F_b(x)| between
/// the empirical CDFs of two (unsorted) non-empty sample sets. The
/// cross-backend equivalence checks compare it against the critical value
/// c(alpha) * sqrt((m + n) / (m * n)), c(0.001) ~ 1.95.
double ks_distance(std::vector<double> a, std::vector<double> b);

}  // namespace circles::util
