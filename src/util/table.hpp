// Console table rendering for bench/experiment output.
//
// Every experiment binary prints the rows the paper's (hypothetical) tables
// would contain; this renderer right-aligns numeric columns and keeps output
// diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace circles::util {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  Table& add_row(std::vector<std::string> cells);

  /// Formats helpers.
  static std::string num(double v, int precision = 2);
  static std::string num(std::uint64_t v);
  static std::string num(std::int64_t v);
  static std::string percent(double fraction, int precision = 1);

  /// Renders with a rule under the header, columns padded to content width.
  std::string to_string() const;

  /// Renders to stdout with an optional title line.
  void print(const std::string& title = "") const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace circles::util
