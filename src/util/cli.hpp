// Tiny flag parser shared by the experiment binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name`. Unknown flags
// are an error so typos in sweep scripts fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace circles::util {

/// Splits on ',', dropping empty segments ("a,,b" -> {"a", "b"}). The one
/// comma-splitting rule shared by the list flags, the obs grid grammar and
/// the sweep --trace parser.
std::vector<std::string> split_commas(const std::string& raw);

class Cli {
 public:
  /// Parses argv; exits with a message on malformed input.
  Cli(int argc, char** argv);

  /// Declares a flag with a default; returns the parsed or default value.
  /// Declaration doubles as the "known flag" registry for error checking.
  std::int64_t int_flag(const std::string& name, std::int64_t def,
                        const std::string& help);
  double double_flag(const std::string& name, double def,
                     const std::string& help);
  std::string string_flag(const std::string& name, std::string def,
                          const std::string& help);
  bool bool_flag(const std::string& name, bool def, const std::string& help);

  /// Repeated/list flags: comma-separated values (`--n=100,1000,10000`),
  /// used by experiment binaries to express sweep axes directly. `def` is
  /// the default rendered exactly as a user would type it.
  std::vector<std::int64_t> int_list_flag(const std::string& name,
                                          const std::string& def,
                                          const std::string& help);
  std::vector<std::string> string_list_flag(const std::string& name,
                                            const std::string& def,
                                            const std::string& help);
  /// Comma-separated doubles (`--sample-points=0.1,0.5,0.9`). Unlike the
  /// other list flags an empty default is legal and yields an empty vector,
  /// so optional axes (probe grids) can stay unset.
  std::vector<double> double_list_flag(const std::string& name,
                                       const std::string& def,
                                       const std::string& help);

  /// Call after all flags are declared: errors on unknown flags, handles
  /// --help by printing usage and exiting.
  void finish();

  const std::string& program() const { return program_; }

 private:
  struct HelpEntry {
    std::string name;
    std::string help;
    std::string def;
  };

  bool lookup(const std::string& name, std::string* value) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> seen_order_;
  std::vector<HelpEntry> help_;
  bool help_requested_ = false;
  mutable std::map<std::string, bool> consumed_;
};

}  // namespace circles::util
