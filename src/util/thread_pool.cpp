#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

namespace circles::util {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(unsigned helpers) {
  workers_.reserve(helpers);
  for (unsigned i = 0; i < helpers; ++i) {
    workers_.emplace_back([this]() { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool([]() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 1 ? hw - 1 : 0u;
  }());
  return pool;
}

void ThreadPool::drain(Region& region) {
  const std::uint64_t start = now_ns();
  std::size_t ran = 0;
  for (;;) {
    const std::size_t i =
        region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.count) break;
    (*region.fn)(i);
    ++ran;
    // release: the task's writes happen-before the caller's acquire read
    // of `done` hitting `count`, so post-region serial reductions see them.
    region.done.fetch_add(1, std::memory_order_release);
  }
  if (ran > 0) {
    region.busy_ns.fetch_add(now_ns() - start, std::memory_order_relaxed);
  }
}

std::uint64_t ThreadPool::parallel_for(
    std::size_t count, unsigned max_threads,
    const std::function<void(std::size_t)>& fn) {
  if (count == 0) return 0;
  if (max_threads <= 1 || count == 1 || workers_.empty()) {
    const std::uint64_t start = now_ns();
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return now_ns() - start;
  }

  Region region;
  region.fn = &fn;
  region.count = count;
  region.max_helpers = static_cast<unsigned>(std::min<std::size_t>(
      {max_threads - 1, workers_.size(), count - 1}));
  if (region.max_helpers > 0) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_.push_back(&region);
    }
    if (region.max_helpers == 1) {
      work_cv_.notify_one();
    } else {
      work_cv_.notify_all();
    }
  }

  drain(region);

  {
    std::unique_lock<std::mutex> lock(mutex_);
    // Stop admitting helpers, then wait for the ones inside to leave; a
    // helper only touches the region between joining and leaving (both
    // under this mutex), so after this wait the stack frame is safe to
    // destroy. Tasks are all done by then: the index space was exhausted
    // when the caller's drain returned, and every claimed task is finished
    // before its claimer leaves.
    open_.erase(std::remove(open_.begin(), open_.end(), &region),
                open_.end());
    region_cv_.wait(lock, [&]() {
      return region.helpers_inside == 0 &&
             region.done.load(std::memory_order_acquire) == region.count;
    });
  }
  return region.busy_ns.load(std::memory_order_relaxed);
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    work_cv_.wait(lock, [this]() { return stop_ || !open_.empty(); });
    if (stop_) return;
    Region* region = open_.back();
    region->helpers_inside += 1;
    if (region->helpers_inside >= region->max_helpers) {
      open_.pop_back();  // full: no further helpers admitted
    }
    lock.unlock();

    drain(*region);

    lock.lock();
    region->helpers_inside -= 1;
    if (region->helpers_inside == 0) region_cv_.notify_all();
  }
}

}  // namespace circles::util
