// Bump-allocated scratch arena for flat, contiguous run-local state.
//
// The dense engine's per-run state used to be a forest of nested
// std::vectors (one per urn per field); the arena packs those into a few
// contiguous (urn, state)-indexed slabs so the epoch hot loops walk
// adjacent memory, and so per-epoch scratch is carved once per run instead
// of reallocated per epoch. Allocation is append-only: alloc() never
// invalidates earlier spans (each oversized request gets its own block), and
// everything is released together when the arena dies. Trivial types only —
// nothing is constructed or destroyed beyond optional zero-filling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace circles::util {

class Arena {
 public:
  explicit Arena(std::size_t initial_bytes = 4096)
      : default_block_bytes_(initial_bytes < 64 ? 64 : initial_bytes) {}

  /// A zero-initialized span of `count` Ts, aligned for T, stable for the
  /// arena's lifetime.
  template <typename T>
  std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "arena memory is raw bytes; only trivial types fit");
    if (count == 0) return {};
    const std::size_t bytes = count * sizeof(T);
    std::size_t offset = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    if (blocks_.empty() || offset + bytes > blocks_.back().bytes) {
      const std::size_t want = bytes > default_block_bytes_
                                   ? bytes
                                   : default_block_bytes_;
      blocks_.push_back({std::make_unique<std::byte[]>(want), want});
      offset = 0;
      // Grow geometrically so a run with many small slabs settles into a
      // handful of blocks instead of one per alloc.
      default_block_bytes_ *= 2;
    }
    std::byte* base = blocks_.back().data.get() + offset;
    used_ = offset + bytes;
    std::memset(base, 0, bytes);
    return std::span<T>(reinterpret_cast<T*>(base), count);
  }

  /// Total bytes reserved across all blocks (telemetry / tests).
  std::size_t capacity_bytes() const {
    std::size_t total = 0;
    for (const Block& block : blocks_) total += block.bytes;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t bytes = 0;
  };

  std::vector<Block> blocks_;
  std::size_t used_ = 0;  // bump offset within blocks_.back()
  std::size_t default_block_bytes_;
};

}  // namespace circles::util
