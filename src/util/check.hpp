// Lightweight runtime checking macros used across the library.
//
// CIRCLES_CHECK is always on (simulation correctness depends on it and the cost
// is negligible relative to the checked operations); CIRCLES_DCHECK compiles
// out in NDEBUG builds and guards hot-path internal invariants.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace circles::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] != '\0' ? " — " : "", msg);
  std::abort();
}

}  // namespace circles::util

#define CIRCLES_CHECK(expr)                                                \
  do {                                                                     \
    if (!(expr)) ::circles::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CIRCLES_CHECK_MSG(expr, msg)                                           \
  do {                                                                         \
    if (!(expr)) ::circles::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define CIRCLES_DCHECK(expr) \
  do {                       \
  } while (0)
#else
#define CIRCLES_DCHECK(expr) CIRCLES_CHECK(expr)
#endif
