#include "util/csv.hpp"

#include <cinttypes>
#include <cstdio>
#include <stdexcept>

#include "util/check.hpp"

namespace circles::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : path_(path), out_(path), columns_(header.size()) {
  if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  row(header);
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  CIRCLES_CHECK_MSG(cells.size() == columns_, "CSV row width mismatch");
  bool first = true;
  for (const auto& cell : cells) {
    if (!first) out_ << ',';
    first = false;
    out_ << escape(cell);
  }
  out_ << '\n';
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::cell(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

std::string CsvWriter::cell(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string CsvWriter::cell(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

}  // namespace circles::util
