// A persistent worker pool for intra-run parallelism.
//
// BatchRunner's across-trial pool spawns threads per batch, which is fine at
// batch granularity; the dense engine's batched epochs need something much
// cheaper — a few parallel regions per epoch, thousands of epochs per run —
// so the workers here are created once and parked on a condition variable
// between regions. parallel_for(count, fn) runs fn(0..count-1) with the
// calling thread participating; the division of indices across threads is
// racy ON PURPOSE (work stealing via one fetch_add), which is only sound
// because every caller in this codebase writes task-indexed disjoint state
// and performs order-sensitive reductions serially afterwards. Determinism
// therefore never depends on the pool: results are bitwise identical for any
// worker count, including zero.
//
// Concurrent parallel_for calls from different threads are safe (the
// BatchRunner's trial workers may each drive their own intra-run regions);
// regions are served newest-first, which keeps a small batch's regions from
// interleaving pathologically.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace circles::util {

class ThreadPool {
 public:
  /// `helpers` worker threads are spawned (callers participate in their own
  /// regions, so total concurrency per region is helpers + 1). Zero helpers
  /// is valid: every region then runs inline on the caller.
  explicit ThreadPool(unsigned helpers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker threads (excluding callers).
  unsigned helpers() const { return static_cast<unsigned>(workers_.size()); }

  /// Runs fn(i) for every i in [0, count); returns when all calls finished.
  /// At most `max_threads` threads (including the caller) touch the region;
  /// max_threads <= 1, count <= 1 or an empty pool short-circuit to an
  /// inline serial loop. Returns the summed task execution time in
  /// nanoseconds across all participants (telemetry only).
  std::uint64_t parallel_for(std::size_t count, unsigned max_threads,
                             const std::function<void(std::size_t)>& fn);

  /// The process-wide pool, lazily built with hardware_concurrency() - 1
  /// helpers. Engines share it so concurrent trials cannot oversubscribe
  /// the machine with per-engine pools.
  static ThreadPool& shared();

 private:
  struct Region {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::uint64_t> busy_ns{0};
    unsigned max_helpers = 0;  // helper threads admitted (caller not counted)
    unsigned helpers_inside = 0;  // guarded by the pool mutex
  };

  /// Claims and runs tasks until the region's index space is exhausted.
  static void drain(Region& region);

  void worker_loop();

  std::mutex mutex_;
  std::condition_variable work_cv_;   // workers: "a region was posted"
  std::condition_variable region_cv_; // callers: "a helper left a region"
  std::vector<Region*> open_;         // regions still admitting helpers
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace circles::util
