#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace circles::util {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double quantile_sorted(std::span<const double> sorted, double q) {
  CIRCLES_CHECK(!sorted.empty());
  CIRCLES_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double x : sorted) rs.add(x);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.max = sorted.back();
  s.p50 = quantile_sorted(sorted, 0.50);
  s.p90 = quantile_sorted(sorted, 0.90);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p90=" << p90 << " p99=" << p99 << " max=" << max;
  return os.str();
}

double loglog_slope(std::span<const double> x, std::span<const double> y) {
  CIRCLES_CHECK(x.size() == y.size());
  CIRCLES_CHECK(x.size() >= 2);
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    CIRCLES_CHECK_MSG(x[i] > 0.0 && y[i] > 0.0,
                      "loglog_slope requires positive samples");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  CIRCLES_CHECK_MSG(denom != 0.0, "loglog_slope: degenerate x values");
  return (n * sxy - sx * sy) / denom;
}

double ks_distance(std::vector<double> a, std::vector<double> b) {
  CIRCLES_CHECK_MSG(!a.empty() && !b.empty(),
                    "ks_distance needs non-empty samples");
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                             static_cast<double>(j) / b.size()));
  }
  return d;
}

}  // namespace circles::util
