// A small counted multiset over an ordered key type.
//
// The paper works with configurations as multisets (Definition 1.1) and with
// multiset union / subset / difference generalizations; this type makes those
// operations explicit and cheap, and keeps deterministic (sorted) iteration
// order so test failures print stably.
#pragma once

#include <cstdint>
#include <map>
#include <sstream>
#include <string>

#include "util/check.hpp"

namespace circles::util {

template <typename Key>
class CountedMultiset {
 public:
  using count_type = std::uint64_t;

  CountedMultiset() = default;

  void add(const Key& key, count_type count = 1) {
    if (count == 0) return;
    counts_[key] += count;
    size_ += count;
  }

  /// Removes `count` copies; the copies must exist.
  void remove(const Key& key, count_type count = 1) {
    if (count == 0) return;
    auto it = counts_.find(key);
    CIRCLES_CHECK_MSG(it != counts_.end() && it->second >= count,
                      "removing elements absent from multiset");
    it->second -= count;
    size_ -= count;
    if (it->second == 0) counts_.erase(it);
  }

  count_type count(const Key& key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  bool contains(const Key& key) const { return count(key) > 0; }
  count_type size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t distinct_size() const { return counts_.size(); }

  /// Multiset subset: every key's multiplicity here is <= other's.
  bool subset_of(const CountedMultiset& other) const {
    for (const auto& [key, cnt] : counts_) {
      if (other.count(key) < cnt) return false;
    }
    return true;
  }

  /// Multiset (additive) union, i.e. pointwise sum of multiplicities. The
  /// paper's ∪ over the disjoint circles f(G_p) is exactly this sum.
  CountedMultiset union_with(const CountedMultiset& other) const {
    CountedMultiset out = *this;
    for (const auto& [key, cnt] : other.counts_) out.add(key, cnt);
    return out;
  }

  /// Multiset difference (saturating per key at zero).
  CountedMultiset difference(const CountedMultiset& other) const {
    CountedMultiset out;
    for (const auto& [key, cnt] : counts_) {
      const count_type o = other.count(key);
      if (cnt > o) out.add(key, cnt - o);
    }
    return out;
  }

  bool operator==(const CountedMultiset& other) const {
    return counts_ == other.counts_;
  }

  auto begin() const { return counts_.begin(); }
  auto end() const { return counts_.end(); }

  /// Human-readable "{key×count, ...}" rendering (requires streamable Key).
  std::string to_string() const {
    std::ostringstream os;
    os << '{';
    bool first = true;
    for (const auto& [key, cnt] : counts_) {
      if (!first) os << ", ";
      first = false;
      os << key;
      if (cnt != 1) os << "x" << cnt;
    }
    os << '}';
    return os.str();
  }

 private:
  std::map<Key, count_type> counts_;
  count_type size_ = 0;
};

}  // namespace circles::util
