#include "util/rng.hpp"

#include <cmath>

namespace circles::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro256++ requires a nonzero state; splitmix64 of any seed produces
  // all-zero words with probability ~2^-256, but be safe anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_below(std::uint64_t bound) {
  CIRCLES_DCHECK(bound > 0);
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CIRCLES_DCHECK(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_below(span));
}

double Rng::uniform01() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::pair<std::uint64_t, std::uint64_t> Rng::distinct_pair(std::uint64_t n) {
  CIRCLES_DCHECK(n >= 2);
  const std::uint64_t a = uniform_below(n);
  std::uint64_t b = uniform_below(n - 1);
  if (b >= a) ++b;
  return {a, b};
}

Rng Rng::fork(std::uint64_t index) const {
  // Hash the full 256-bit state together with the index through splitmix64;
  // the state is read-only, so forks commute with each other and leave the
  // parent stream untouched.
  std::uint64_t sm = 0x6c62272e07bb0142ULL ^ index;
  std::uint64_t seed = splitmix64(sm);
  for (const std::uint64_t word : s_) {
    sm ^= word;
    seed ^= splitmix64(sm);
    seed = rotl(seed, 17) * 0x9fb21c651e98df25ULL;
  }
  return Rng(seed ^ index);
}

Rng Rng::split() {
  // Derive a child seed from two outputs; the streams are not provably
  // independent, but xoshiro's mixing is far more than adequate for
  // simulation workloads.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32) ^ 0xd1b54a32d192ed03ULL);
}

std::size_t sample_discrete(Rng& rng, std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    CIRCLES_CHECK_MSG(w >= 0.0, "negative weight in discrete distribution");
    total += w;
  }
  CIRCLES_CHECK_MSG(total > 0.0, "discrete distribution has zero total mass");
  double r = rng.uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;  // numeric fallback
}

std::vector<double> zipf_weights(std::size_t k, double exponent) {
  CIRCLES_CHECK(k > 0);
  std::vector<double> w(k);
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), exponent);
    total += w[i];
  }
  for (auto& x : w) x /= total;
  return w;
}

}  // namespace circles::util
