// Deterministic, platform-independent pseudo-random number generation.
//
// The simulator must replay byte-identically across platforms and standard
// library versions, so we implement xoshiro256++ (seeded via splitmix64) and
// our own bounded-integer / shuffle / real-valued helpers instead of relying
// on <random> distributions, whose outputs are implementation-defined.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace circles::util {

/// splitmix64 step; used for seeding and for cheap hash mixing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  std::uint64_t operator()();

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased (Lemire's
  /// method with rejection).
  std::uint64_t uniform_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform unordered pair of distinct indices from [0, n). Requires n >= 2.
  std::pair<std::uint64_t, std::uint64_t> distinct_pair(std::uint64_t n);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i + 1));
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Derive an independent child generator (for per-trial streams).
  /// Advances this generator by two outputs.
  Rng split();

  /// Derive the `index`-th child sub-stream of the current state WITHOUT
  /// advancing this generator: fork(i) called twice (or in any order with
  /// other fork calls) returns the same child. The dense urn engine uses
  /// this to give every urn and urn-pair block its own stream, so per-block
  /// draws are reproducible regardless of block iteration order.
  Rng fork(std::uint64_t index) const;

 private:
  std::uint64_t s_[4];
};

/// Sample an index from a discrete distribution given by non-negative weights.
/// Requires at least one strictly positive weight.
std::size_t sample_discrete(Rng& rng, std::span<const double> weights);

/// Zipf(s) sample support helper: returns the probability vector over [0, k).
std::vector<double> zipf_weights(std::size_t k, double exponent);

}  // namespace circles::util
