#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace circles::util {

namespace {
bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}
}  // namespace

Cli::Cli(int argc, char** argv) : program_(argc > 0 ? argv[0] : "prog") {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (!starts_with(arg, "--")) {
      std::fprintf(stderr, "unexpected positional argument: %s\n", arg.c_str());
      std::exit(2);
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      seen_order_.push_back(arg.substr(0, eq));
    } else if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
      seen_order_.push_back(arg);
    } else {
      values_[arg] = "true";  // boolean flag
      seen_order_.push_back(arg);
    }
  }
}

bool Cli::lookup(const std::string& name, std::string* value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_[name] = true;
  *value = it->second;
  return true;
}

std::int64_t Cli::int_flag(const std::string& name, std::int64_t def,
                           const std::string& help) {
  help_.push_back({name, help, std::to_string(def)});
  std::string raw;
  if (!lookup(name, &raw)) return def;
  try {
    return std::stoll(raw);
  } catch (const std::exception&) {
    std::fprintf(stderr, "flag --%s expects an integer, got '%s'\n",
                 name.c_str(), raw.c_str());
    std::exit(2);
  }
}

double Cli::double_flag(const std::string& name, double def,
                        const std::string& help) {
  help_.push_back({name, help, std::to_string(def)});
  std::string raw;
  if (!lookup(name, &raw)) return def;
  try {
    return std::stod(raw);
  } catch (const std::exception&) {
    std::fprintf(stderr, "flag --%s expects a number, got '%s'\n", name.c_str(),
                 raw.c_str());
    std::exit(2);
  }
}

std::string Cli::string_flag(const std::string& name, std::string def,
                             const std::string& help) {
  help_.push_back({name, help, def});
  std::string raw;
  if (!lookup(name, &raw)) return def;
  return raw;
}

bool Cli::bool_flag(const std::string& name, bool def,
                    const std::string& help) {
  help_.push_back({name, help, def ? "true" : "false"});
  std::string raw;
  if (!lookup(name, &raw)) return def;
  if (raw == "true" || raw == "1" || raw == "yes") return true;
  if (raw == "false" || raw == "0" || raw == "no") return false;
  std::fprintf(stderr, "flag --%s expects a boolean, got '%s'\n", name.c_str(),
               raw.c_str());
  std::exit(2);
}

std::vector<std::string> split_commas(const std::string& raw) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= raw.size()) {
    const auto comma = raw.find(',', start);
    const auto end = comma == std::string::npos ? raw.size() : comma;
    if (end > start) parts.push_back(raw.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return parts;
}

std::vector<std::int64_t> Cli::int_list_flag(const std::string& name,
                                             const std::string& def,
                                             const std::string& help) {
  help_.push_back({name, help, def});
  std::string raw;
  if (!lookup(name, &raw)) raw = def;
  std::vector<std::int64_t> values;
  for (const auto& part : split_commas(raw)) {
    try {
      values.push_back(std::stoll(part));
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "flag --%s expects comma-separated integers, got '%s'\n",
                   name.c_str(), raw.c_str());
      std::exit(2);
    }
  }
  if (values.empty()) {
    std::fprintf(stderr, "flag --%s expects at least one value\n",
                 name.c_str());
    std::exit(2);
  }
  return values;
}

std::vector<double> Cli::double_list_flag(const std::string& name,
                                          const std::string& def,
                                          const std::string& help) {
  help_.push_back({name, help, def.empty() ? "(unset)" : def});
  std::string raw;
  if (!lookup(name, &raw)) raw = def;
  std::vector<double> values;
  for (const auto& part : split_commas(raw)) {
    try {
      std::size_t used = 0;
      values.push_back(std::stod(part, &used));
      if (used != part.size()) throw std::invalid_argument(part);
    } catch (const std::exception&) {
      std::fprintf(stderr,
                   "flag --%s expects comma-separated numbers, got '%s'\n",
                   name.c_str(), raw.c_str());
      std::exit(2);
    }
  }
  return values;
}

std::vector<std::string> Cli::string_list_flag(const std::string& name,
                                               const std::string& def,
                                               const std::string& help) {
  help_.push_back({name, help, def});
  std::string raw;
  if (!lookup(name, &raw)) raw = def;
  auto values = split_commas(raw);
  if (values.empty()) {
    std::fprintf(stderr, "flag --%s expects at least one value\n",
                 name.c_str());
    std::exit(2);
  }
  return values;
}

void Cli::finish() {
  if (help_requested_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& entry : help_) {
      std::printf("  --%-20s %s (default: %s)\n", entry.name.c_str(),
                  entry.help.c_str(), entry.def.c_str());
    }
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!consumed_.count(name)) {
      std::fprintf(stderr, "unknown flag: --%s (see --help)\n", name.c_str());
      std::exit(2);
    }
  }
}

}  // namespace circles::util
