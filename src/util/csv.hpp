// Minimal CSV writer for experiment outputs.
//
// Benches print human-readable tables to stdout and optionally mirror rows to
// CSV files so results can be post-processed (plots, regression baselines).
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace circles::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends one row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic values with full precision.
  static std::string cell(double v);
  static std::string cell(std::uint64_t v);
  static std::string cell(std::int64_t v);
  static std::string cell(std::string_view v) { return std::string(v); }

  const std::string& path() const { return path_; }

 private:
  static std::string escape(std::string_view cell);

  std::string path_;
  std::ofstream out_;
  std::size_t columns_;
};

}  // namespace circles::util
