#include "util/table.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace circles::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  CIRCLES_CHECK_MSG(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string Table::percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::fputs(to_string().c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace circles::util
