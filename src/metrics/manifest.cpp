#include "metrics/manifest.hpp"

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <stdexcept>

#if !defined(_WIN32)
#include <unistd.h>
#endif

#include "metrics/metrics.hpp"

// Build provenance is injected by CMake as compile definitions on the
// library target; fall back to "unknown" so the file also compiles outside
// the repo's own build (e.g. if vendored).
#ifndef CIRCLES_GIT_DESCRIBE
#define CIRCLES_GIT_DESCRIBE "unknown"
#endif
#ifndef CIRCLES_BUILD_TYPE
#define CIRCLES_BUILD_TYPE "unknown"
#endif
#ifndef CIRCLES_COMPILER
#define CIRCLES_COMPILER "unknown"
#endif

namespace circles::metrics {
namespace {

std::string detect_hostname() {
#if !defined(_WIN32)
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) == 0 && buf[0] != '\0') return buf;
#endif
  if (const char* env = std::getenv("HOSTNAME")) return env;
  if (const char* env = std::getenv("COMPUTERNAME")) return env;
  return "unknown";
}

}  // namespace

std::string utc_timestamp_now() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
#if defined(_WIN32)
  gmtime_s(&utc, &now);
#else
  gmtime_r(&now, &utc);
#endif
  char buf[64];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec);
  return buf;
}

RunManifest RunManifest::collect() {
  RunManifest manifest;
  manifest.git_describe = CIRCLES_GIT_DESCRIBE;
  manifest.build_type = CIRCLES_BUILD_TYPE;
  manifest.compiler = CIRCLES_COMPILER;
  manifest.hostname = detect_hostname();
  manifest.started_utc = utc_timestamp_now();
  return manifest;
}

std::string RunManifest::to_json() const {
  std::string out = "{";
  const auto field = [&out](const char* key, const std::string& value) {
    if (out.size() > 1) out += ",";
    out += "\"";
    out += key;
    out += "\":\"" + json_escape(value) + "\"";
  };
  field("spec", spec);
  field("backend", backend);
  field("kernel", kernel);
  out += ",\"seed\":" + std::to_string(seed);
  out += ",\"trials\":" + std::to_string(trials);
  out += ",\"threads\":" + std::to_string(threads);
  out += ",\"run_threads\":" + std::to_string(run_threads);
  out += ",\"utilization\":" + json_number(utilization);
  field("git_describe", git_describe);
  field("build_type", build_type);
  field("compiler", compiler);
  field("hostname", hostname);
  field("started_utc", started_utc);
  field("finished_utc", finished_utc);
  out += ",\"wall_ms\":" + json_number(wall_ms);
  out += "}";
  return out;
}

void RunManifest::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("manifest: cannot open " + path);
  file << to_json() << "\n";
  if (!file) throw std::runtime_error("manifest: write failed for " + path);
}

}  // namespace circles::metrics
