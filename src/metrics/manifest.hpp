// Provenance for a batch of trials: everything needed to re-run or audit a
// result file six months later — the exact RunSpec string, the backend the
// auto ladder resolved to, the seed, and the build/host environment. The
// BatchRunner fills one per spec (SpecResult::manifest) and writes it next
// to `metrics=` sinks; bench_report embeds one in every BENCH_*.json.
#pragma once

#include <cstdint>
#include <string>

namespace circles::metrics {

struct RunManifest {
  // What ran (filled by the BatchRunner / bench harness).
  std::string spec;     ///< Full RunSpec::to_string() round-trippable string.
  std::string backend;  ///< Resolved backend ("dense_batched", not "auto").
  std::string kernel;   ///< kernel::CompileStats kind, "" if no kernel.
  std::uint64_t seed = 0;
  std::uint32_t trials = 0;
  std::uint32_t threads = 0;      ///< Outer across-trial worker count.
  std::uint32_t run_threads = 0;  ///< Resolved inner per-run worker budget.
  double utilization = 0.0;  ///< Outer-pool busy fraction over the batch.

  // Where/when it ran (filled by collect()).
  std::string git_describe;  ///< `git describe --always --dirty` at configure.
  std::string build_type;    ///< CMAKE_BUILD_TYPE.
  std::string compiler;      ///< Compiler id + version.
  std::string hostname;
  std::string started_utc;   ///< ISO-8601 UTC, e.g. "2025-01-01T12:00:00Z".
  std::string finished_utc;
  double wall_ms = 0.0;

  /// Environment-only manifest: git/build/host fields plus started_utc set
  /// to now. Callers fill the what-ran fields and finished_utc themselves.
  static RunManifest collect();

  /// Single flat JSON object (one line, no trailing newline).
  std::string to_json() const;
  void write(const std::string& path) const;
};

/// Current wall-clock time as ISO-8601 UTC ("2025-01-01T12:00:00Z").
std::string utc_timestamp_now();

}  // namespace circles::metrics
