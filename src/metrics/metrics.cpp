#include "metrics/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace circles::metrics {

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Sample> samples;
  samples.reserve(counters_.size() + gauges_.size() + timers_.size());
  // std::map iteration is name-sorted; interleave kinds per name by merging
  // the three sorted streams into one sorted-by-(name, kind) list.
  for (const auto& [name, c] : counters_) {
    samples.push_back({name, "counter", static_cast<double>(c->value()),
                       c->value()});
  }
  for (const auto& [name, g] : gauges_) {
    samples.push_back({name, "gauge", g->value(), 1});
  }
  for (const auto& [name, t] : timers_) {
    samples.push_back({name, "timer", t->total_ms(), t->count()});
  }
  std::sort(samples.begin(), samples.end(),
            [](const Sample& a, const Sample& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.kind < b.kind;
            });
  return samples;
}

std::string MetricsRegistry::to_jsonl() const {
  std::string out;
  for (const Sample& s : snapshot()) {
    out += "{\"name\":\"" + json_escape(s.name) + "\",\"kind\":\"" + s.kind +
           "\",\"value\":" + json_number(s.value) +
           ",\"count\":" + std::to_string(s.count) + "}\n";
  }
  return out;
}

std::string MetricsRegistry::to_csv() const {
  std::string out = "name,kind,value,count\n";
  for (const Sample& s : snapshot()) {
    char value[64];
    std::snprintf(value, sizeof value, "%.17g", s.value);
    out += s.name + "," + s.kind + "," + value + "," + std::to_string(s.count) +
           "\n";
  }
  return out;
}

void MetricsRegistry::write(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("metrics: cannot open " + path);
  const bool csv = path.size() >= 4 && path.compare(path.size() - 4, 4,
                                                    ".csv") == 0;
  file << (csv ? to_csv() : to_jsonl());
  if (!file) throw std::runtime_error("metrics: write failed for " + path);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace circles::metrics
