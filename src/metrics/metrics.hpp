// Runtime telemetry for the simulator itself (not the simulated system —
// that is src/obs/). A MetricsRegistry holds named counters, gauges, and
// timers; engines flush work counts into it at run boundaries and the
// BatchRunner records per-phase wall time and thread utilization.
//
// Design rules that keep the disabled path free and the enabled path cheap:
//  * Everything is keyed off a `MetricsRegistry*` that defaults to nullptr.
//    The null-safe helpers below compile to a pointer test, so engines can
//    instrument unconditionally.
//  * Name lookup (mutex + map) happens only when a handle is acquired —
//    never per event. Hot loops accumulate into plain local variables and
//    flush once per run via Counter::add(delta).
//  * Handles returned by the registry are stable for its lifetime
//    (node-based map of unique_ptrs), so threads share Counter/Timer
//    objects and bump them with relaxed atomics.
//
// Metrics never touch any RNG stream and never reorder simulation work, so
// runs are bitwise identical with and without a registry (tested per
// backend in metrics_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace circles::metrics {

/// Monotonically increasing event count. Thread-safe (relaxed — counts are
/// reconciled at snapshot time, not used for synchronization).
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (utilization, ratios, sizes).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Accumulated duration + record count. Feed it via ScopedTimer or record
/// an externally measured span directly.
class Timer {
 public:
  void record_ns(std::uint64_t ns) {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_ms(double ms) {
    record_ns(ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1e6));
  }
  double total_ms() const {
    return static_cast<double>(total_ns_.load(std::memory_order_relaxed)) /
           1e6;
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> total_ns_{0};
  std::atomic<std::uint64_t> count_{0};
};

/// RAII span feeding a Timer. A null timer reads no clock at all, so the
/// disabled path costs one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) {
    if (timer_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Ends the span early (idempotent).
  void stop() {
    if (timer_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    timer_->record_ns(ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
    timer_ = nullptr;
  }

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_{};
};

/// Named instrument store. Handle acquisition is mutex-guarded; the handles
/// themselves are lock-free. One name may exist per kind (a counter and a
/// timer may share a name; snapshots disambiguate by kind).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);

  struct Sample {
    std::string name;
    std::string kind;  // "counter" | "gauge" | "timer"
    double value = 0.0;  // counter count; gauge value; timer total ms
    std::uint64_t count = 0;  // counter count; timer record count; gauge 1
  };

  /// Point-in-time view, sorted by (name, kind).
  std::vector<Sample> snapshot() const;

  /// One JSON object per line: {"name":...,"kind":...,"value":...,"count":...}
  std::string to_jsonl() const;
  /// Header `name,kind,value,count` then one row per sample.
  std::string to_csv() const;
  /// Writes to_csv() when `path` ends in ".csv", else to_jsonl().
  void write(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

// Null-safe helpers: instrumentation sites call these unconditionally and
// pay a pointer test when telemetry is off.

inline Counter* counter(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? nullptr : &registry->counter(name);
}
inline Timer* timer(MetricsRegistry* registry, const std::string& name) {
  return registry == nullptr ? nullptr : &registry->timer(name);
}
inline void add(Counter* counter, std::uint64_t delta = 1) {
  if (counter != nullptr && delta != 0) counter->add(delta);
}
inline void add(MetricsRegistry* registry, const std::string& name,
                std::uint64_t delta) {
  if (registry != nullptr && delta != 0) registry->counter(name).add(delta);
}
inline void set_gauge(MetricsRegistry* registry, const std::string& name,
                      double value) {
  if (registry != nullptr) registry->gauge(name).set(value);
}
inline void record_ms(MetricsRegistry* registry, const std::string& name,
                      double ms) {
  if (registry != nullptr) registry->timer(name).record_ms(ms);
}

/// Escapes a string for embedding inside JSON double quotes (quotes,
/// backslashes, control characters). Shared by the sinks here, RunManifest,
/// and bench_report.
std::string json_escape(const std::string& text);

/// Formats a double as a JSON value: shortest round-trip representation,
/// `null` for non-finite inputs (JSON has no inf/nan).
std::string json_number(double value);

}  // namespace circles::metrics
