// CompiledProtocol: one transition IR shared by every engine.
//
// Every simulated interaction used to pay a virtual Protocol::transition()
// call, and each engine worked around it differently (pp::CachedProtocol in
// the benches, a private table inside DenseEngine, nothing at all in
// Gillespie and the model checker). This module lowers a pp::Protocol ONCE
// into an immutable, thread-shareable kernel carrying everything the hot
// loops need:
//
//  * the transition function itself, virtual-dispatch-free;
//  * per-pair flags — null-ness (exact silence detection) and whether the
//    transition flips any announced output (the CRN convergence clock);
//  * a per-state "active responder" adjacency index (which t make (s, t)
//    non-null), in CSR layout, for silence checks and successor enumeration
//    that skip null pairs wholesale;
//  * a per-state output-symbol array replacing virtual output() lookups.
//
// Two table kinds, chosen by a memory budget at compile time:
//
//  * kDense — a flat num_states^2 table (transition + flags, one load per
//    lookup). Built eagerly; the only layout small state spaces need.
//  * kSparse — for cubic state spaces (the paper's circles protocol has k^3
//    states, so k^6 ordered pairs) a full table is impossible. Instead a
//    fixed-capacity, lock-free open-addressing cache materializes entries
//    lazily over the pairs actually reached: the first lookup of a pair
//    computes it via the virtual function and publishes it; every later
//    lookup — from any thread — is a hash probe. Steady-state loops
//    therefore make zero virtual transition() calls under either kind.
//
// The kernel is immutable in the API sense: concurrent readers never
// coordinate, sparse publication is a single release-CAS per distinct pair,
// and duplicated racing inserts are benign (the transition function is
// deterministic, so both writers publish identical bytes).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/types.hpp"

namespace circles::kernel {

enum class TableKind {
  kDense,   // flat num_states^2 table, built eagerly
  kSparse,  // lazily-materialized hashed cache over reachable pairs
};

std::string to_string(TableKind kind);

struct CompileOptions {
  /// Largest ordered-pair count lowered to a dense table; above it the
  /// kernel switches to the sparse cache. The default (2^22 entries, 36 MiB
  /// of table) matches the historical pp::CachedProtocol budget.
  std::uint64_t max_dense_entries = 1ull << 22;

  /// Slot capacity of the sparse pair cache (rounded up to a power of two).
  /// 2^20 slots is 17 MiB and comfortably holds the reached-pair working
  /// set of every registered protocol at practical population sizes; a full
  /// cache degrades to per-call computation, never to wrong answers.
  std::uint64_t sparse_slots = 1ull << 20;

  /// Build the per-state active-responder adjacency index (dense kind only;
  /// the sparse kind cannot know a state's partners without enumerating all
  /// of them).
  bool build_adjacency = true;

  /// Precompute the per-state output array when num_states <= this bound
  /// (4 bytes per state); larger protocols keep virtual output() calls,
  /// which sit on no steady-state path.
  std::uint64_t max_output_states = 1ull << 24;

  /// Count sparse-cache hits (one relaxed fetch_add per probe that lands on
  /// a materialized entry). Off by default: the hit path is THE hot path of
  /// large-state-space runs, so the counter is opt-in telemetry — the
  /// BatchRunner enables it for specs with a metrics registry attached.
  bool count_sparse_hits = false;

  /// Preset for one-shot compiles (a kernel built for a single run, e.g.
  /// pp::Engine::run(const Protocol&)): a smaller dense budget so per-trial
  /// table builds stay microseconds, and a smaller cache.
  static CompileOptions one_shot() {
    CompileOptions options;
    options.max_dense_entries = 1ull << 16;
    options.sparse_slots = 1ull << 16;
    return options;
  }
};

/// What compile() built and what it cost. Surfaced per spec by the
/// BatchRunner so table-build time is never silently attributed to
/// simulation.
struct CompileStats {
  TableKind kind = TableKind::kDense;
  std::uint64_t states = 0;
  /// Dense: num_states^2 (all materialized). Sparse: slot capacity.
  std::uint64_t entries = 0;
  /// Table memory footprint (transition + flag arrays, adjacency, outputs).
  std::uint64_t bytes = 0;
  double build_ms = 0.0;
  /// Dense only: number of non-null ordered pairs (= adjacency size).
  std::uint64_t nonnull_pairs = 0;
  /// Sparse only: entries materialized so far / lookups that found the
  /// cache full (served by direct computation).
  std::uint64_t sparse_filled = 0;
  std::uint64_t sparse_overflow = 0;
  /// Sparse only, and only when CompileOptions::count_sparse_hits: lookups
  /// served from a materialized entry.
  std::uint64_t sparse_hits = 0;

  /// "dense 531441 entries, 4.6 MiB, built in 3.2 ms".
  std::string to_string() const;
};

class CompiledProtocol {
 public:
  /// Lowers `protocol`, which must outlive the kernel. Dense lowering costs
  /// one virtual transition() call per ordered state pair; sparse lowering
  /// is allocation only.
  explicit CompiledProtocol(const pp::Protocol& protocol,
                            CompileOptions options = {});

  CompiledProtocol(const CompiledProtocol&) = delete;
  CompiledProtocol& operator=(const CompiledProtocol&) = delete;

  const pp::Protocol& protocol() const { return *protocol_; }
  std::uint64_t num_states() const { return num_states_; }
  std::uint32_t num_colors() const { return num_colors_; }
  std::uint32_t num_output_symbols() const { return num_output_symbols_; }
  TableKind kind() const { return kind_; }

  /// Snapshot of the compile stats (sparse fill/overflow counters move as
  /// the cache materializes).
  CompileStats stats() const;

  pp::StateId input(pp::ColorId color) const { return inputs_[color]; }

  /// Output symbol of a state: one array load when the output table was
  /// built, a virtual call otherwise (never on a steady-state path).
  pp::OutputSymbol output(pp::StateId state) const {
    if (!outputs_.empty()) return outputs_[state];
    return protocol_->output(state);
  }

  /// The transition function, virtual-dispatch-free in steady state.
  pp::Transition transition(pp::StateId a, pp::StateId b) const {
    if (kind_ == TableKind::kDense) {
      return table_[static_cast<std::size_t>(a) * num_states_ + b];
    }
    return sparse_lookup(a, b).transition;
  }

  /// True iff transition(a, b) changes a state. One flag load (dense) or
  /// one probe (sparse); the exact-silence primitive of every engine.
  bool nonnull(pp::StateId a, pp::StateId b) const {
    if (kind_ == TableKind::kDense) {
      return (flags_[static_cast<std::size_t>(a) * num_states_ + b] &
              kNonNull) != 0;
    }
    return (sparse_lookup(a, b).flags & kNonNull) != 0;
  }

  /// True iff transition(a, b) changes some announced output symbol (the
  /// CRN convergence-clock predicate).
  bool output_changes(pp::StateId a, pp::StateId b) const {
    if (kind_ == TableKind::kDense) {
      return (flags_[static_cast<std::size_t>(a) * num_states_ + b] &
              kOutputDelta) != 0;
    }
    return (sparse_lookup(a, b).flags & kOutputDelta) != 0;
  }

  /// True when the per-state adjacency index was built (dense kind with
  /// build_adjacency).
  bool has_adjacency() const { return !adjacency_offsets_.empty(); }

  /// Responders t with transition(s, t) non-null, ascending. Requires
  /// has_adjacency().
  std::span<const pp::StateId> active_responders(pp::StateId s) const {
    const std::size_t begin = adjacency_offsets_[s];
    const std::size_t end = adjacency_offsets_[static_cast<std::size_t>(s) + 1];
    return {adjacency_partners_.data() + begin, end - begin};
  }

  /// Exact silence test for a configuration given as its present states
  /// with a count accessor: no ordered pair (requiring count >= 2 on the
  /// diagonal) is non-null. Counts is any callable StateId -> uint64.
  template <typename Counts>
  bool config_silent(std::span<const pp::StateId> present,
                     Counts&& counts) const {
    if (has_adjacency()) {
      for (const pp::StateId s : present) {
        if (counts(s) == 0) continue;
        for (const pp::StateId t : active_responders(s)) {
          const std::uint64_t c = counts(t);
          if (c == 0 || (s == t && c < 2)) continue;
          return false;
        }
      }
      return true;
    }
    for (const pp::StateId s : present) {
      if (counts(s) == 0) continue;
      for (const pp::StateId t : present) {
        const std::uint64_t c = counts(t);
        if (c == 0 || (s == t && c < 2)) continue;
        if (nonnull(s, t)) return false;
      }
    }
    return true;
  }

 private:
  static constexpr std::uint8_t kNonNull = 1;
  static constexpr std::uint8_t kOutputDelta = 2;

  struct SparseEntry {
    pp::Transition transition;
    std::uint8_t flags;
  };

  /// Sentinel keys for the sparse cache. Real keys are (a << 32) | b with
  /// a, b < num_states < 2^32 - 1, so neither sentinel is reachable.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  static constexpr std::uint64_t kBusyKey = ~std::uint64_t{0} - 1;

  SparseEntry sparse_lookup(pp::StateId a, pp::StateId b) const;
  SparseEntry compute_entry(pp::StateId a, pp::StateId b) const;

  const pp::Protocol* protocol_;
  std::uint64_t num_states_;
  std::uint32_t num_colors_;
  std::uint32_t num_output_symbols_;
  TableKind kind_ = TableKind::kDense;
  double build_ms_ = 0.0;
  std::uint64_t nonnull_pairs_ = 0;

  std::vector<pp::StateId> inputs_;       // per color
  std::vector<pp::OutputSymbol> outputs_; // per state; empty if over budget

  // Dense kind.
  std::vector<pp::Transition> table_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::size_t> adjacency_offsets_;  // CSR: num_states + 1
  std::vector<pp::StateId> adjacency_partners_;

  // Sparse kind: open-addressing cache with linear probing. values_/vflags_
  // for a slot are written exclusively by the thread that claimed the slot's
  // key via CAS(kEmptyKey -> kBusyKey), then published by a release store of
  // the real key; readers acquire-load the key first, so the data race is
  // ordered. Racing readers that see kBusyKey simply compute the entry
  // directly that one time.
  std::uint64_t sparse_mask_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> keys_;
  std::unique_ptr<std::uint64_t[]> values_;  // packed (init << 32) | resp
  std::unique_ptr<std::uint8_t[]> vflags_;
  mutable std::atomic<std::uint64_t> sparse_filled_{0};
  mutable std::atomic<std::uint64_t> sparse_overflow_{0};
  bool count_sparse_hits_ = false;
  mutable std::atomic<std::uint64_t> sparse_hits_{0};
};

inline CompiledProtocol::SparseEntry CompiledProtocol::sparse_lookup(
    pp::StateId a, pp::StateId b) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(a) << 32) | b;
  // splitmix64 finalizer: full-avalanche, so linear probing stays short.
  std::uint64_t h = key;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  h ^= h >> 31;

  constexpr int kMaxProbes = 64;
  std::uint64_t idx = h & sparse_mask_;
  for (int probe = 0; probe < kMaxProbes; ++probe) {
    std::uint64_t slot = keys_[idx].load(std::memory_order_acquire);
    if (slot == key) {
      if (count_sparse_hits_) {
        sparse_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      const std::uint64_t packed = values_[idx];
      return {{static_cast<pp::StateId>(packed >> 32),
               static_cast<pp::StateId>(packed)},
              vflags_[idx]};
    }
    if (slot == kEmptyKey) {
      const SparseEntry entry = compute_entry(a, b);
      if (keys_[idx].compare_exchange_strong(slot, kBusyKey,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
        values_[idx] =
            (static_cast<std::uint64_t>(entry.transition.initiator) << 32) |
            entry.transition.responder;
        vflags_[idx] = entry.flags;
        keys_[idx].store(key, std::memory_order_release);
        sparse_filled_.fetch_add(1, std::memory_order_relaxed);
      }
      // CAS winner or loser alike: the entry is computed, hand it out. A
      // loser leaves caching to whoever claimed the slot.
      return entry;
    }
    if (slot == kBusyKey) {
      // Mid-publication by another thread (possibly of this very pair);
      // don't wait on it — compute directly this once.
      return compute_entry(a, b);
    }
    idx = (idx + 1) & sparse_mask_;
  }
  sparse_overflow_.fetch_add(1, std::memory_order_relaxed);
  return compute_entry(a, b);
}

}  // namespace circles::kernel
