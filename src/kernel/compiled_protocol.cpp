#include "kernel/compiled_protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "util/check.hpp"

namespace circles::kernel {

namespace {

std::uint64_t round_up_pow2(std::uint64_t v) {
  std::uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::string format_bytes(std::uint64_t bytes) {
  char buffer[32];
  if (bytes >= (1ull << 20)) {
    std::snprintf(buffer, sizeof(buffer), "%.1f MiB",
                  static_cast<double>(bytes) / (1ull << 20));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f KiB",
                  static_cast<double>(bytes) / (1ull << 10));
  }
  return buffer;
}

}  // namespace

std::string to_string(TableKind kind) {
  switch (kind) {
    case TableKind::kDense:
      return "dense";
    case TableKind::kSparse:
      return "sparse";
  }
  return "?";
}

std::string CompileStats::to_string() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "%s %llu entries, %s, built in %.2f ms",
                kernel::to_string(kind).c_str(),
                static_cast<unsigned long long>(entries),
                format_bytes(bytes).c_str(), build_ms);
  std::string out = buffer;
  if (kind == TableKind::kSparse) {
    std::snprintf(buffer, sizeof(buffer), " (%llu materialized)",
                  static_cast<unsigned long long>(sparse_filled));
    out += buffer;
  }
  return out;
}

CompiledProtocol::CompiledProtocol(const pp::Protocol& protocol,
                                   CompileOptions options)
    : protocol_(&protocol),
      num_states_(protocol.num_states()),
      num_colors_(protocol.num_colors()),
      num_output_symbols_(protocol.num_output_symbols()) {
  CIRCLES_CHECK_MSG(num_states_ >= 1, "protocol needs at least one state");
  // Pair keys pack two StateIds into 64 bits with two sentinel values at the
  // top; StateId is 32-bit so this only excludes the degenerate maximum.
  CIRCLES_CHECK_MSG(num_states_ < (1ull << 32) - 1,
                    "kernel supports at most 2^32 - 2 states");
  const auto start = std::chrono::steady_clock::now();

  inputs_.resize(num_colors_);
  for (pp::ColorId c = 0; c < num_colors_; ++c) {
    inputs_[c] = protocol.input(c);
  }
  if (num_states_ <= options.max_output_states) {
    outputs_.resize(num_states_);
    for (std::uint64_t s = 0; s < num_states_; ++s) {
      outputs_[s] = protocol.output(static_cast<pp::StateId>(s));
    }
  }

  if (num_states_ <= options.max_dense_entries / num_states_) {
    kind_ = TableKind::kDense;
    const std::size_t entries = static_cast<std::size_t>(num_states_) *
                                static_cast<std::size_t>(num_states_);
    table_.resize(entries);
    flags_.resize(entries);
    std::vector<std::uint32_t> degree(num_states_, 0);
    for (std::uint64_t a = 0; a < num_states_; ++a) {
      for (std::uint64_t b = 0; b < num_states_; ++b) {
        const auto sa = static_cast<pp::StateId>(a);
        const auto sb = static_cast<pp::StateId>(b);
        const SparseEntry entry = compute_entry(sa, sb);
        const std::size_t at = static_cast<std::size_t>(a) * num_states_ + b;
        table_[at] = entry.transition;
        flags_[at] = entry.flags;
        if (entry.flags & kNonNull) {
          nonnull_pairs_ += 1;
          degree[a] += 1;
        }
      }
    }
    if (options.build_adjacency) {
      adjacency_offsets_.resize(num_states_ + 1, 0);
      for (std::uint64_t s = 0; s < num_states_; ++s) {
        adjacency_offsets_[s + 1] = adjacency_offsets_[s] + degree[s];
      }
      adjacency_partners_.resize(nonnull_pairs_);
      std::vector<std::size_t> cursor(adjacency_offsets_.begin(),
                                      adjacency_offsets_.end() - 1);
      for (std::uint64_t a = 0; a < num_states_; ++a) {
        const std::size_t row = static_cast<std::size_t>(a) * num_states_;
        for (std::uint64_t b = 0; b < num_states_; ++b) {
          if (flags_[row + b] & kNonNull) {
            adjacency_partners_[cursor[a]++] = static_cast<pp::StateId>(b);
          }
        }
      }
    }
  } else {
    kind_ = TableKind::kSparse;
    count_sparse_hits_ = options.count_sparse_hits;
    const std::uint64_t slots =
        round_up_pow2(std::max<std::uint64_t>(options.sparse_slots, 1024));
    sparse_mask_ = slots - 1;
    keys_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
    values_ = std::make_unique<std::uint64_t[]>(slots);
    vflags_ = std::make_unique<std::uint8_t[]>(slots);
    for (std::uint64_t i = 0; i < slots; ++i) {
      keys_[i].store(kEmptyKey, std::memory_order_relaxed);
    }
  }

  build_ms_ = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
}

CompiledProtocol::SparseEntry CompiledProtocol::compute_entry(
    pp::StateId a, pp::StateId b) const {
  const pp::Transition tr = protocol_->transition(a, b);
  std::uint8_t flags = 0;
  if (tr.initiator != a || tr.responder != b) {
    flags |= kNonNull;
    if (output(tr.initiator) != output(a) ||
        output(tr.responder) != output(b)) {
      flags |= kOutputDelta;
    }
  }
  return {tr, flags};
}

CompileStats CompiledProtocol::stats() const {
  CompileStats stats;
  stats.kind = kind_;
  stats.states = num_states_;
  stats.build_ms = build_ms_;
  stats.nonnull_pairs = nonnull_pairs_;
  if (kind_ == TableKind::kDense) {
    stats.entries = static_cast<std::uint64_t>(table_.size());
    stats.bytes = table_.size() * sizeof(pp::Transition) + flags_.size() +
                  adjacency_offsets_.size() * sizeof(std::size_t) +
                  adjacency_partners_.size() * sizeof(pp::StateId);
  } else {
    stats.entries = sparse_mask_ + 1;
    stats.bytes = (sparse_mask_ + 1) *
                  (sizeof(std::atomic<std::uint64_t>) +
                   sizeof(std::uint64_t) + sizeof(std::uint8_t));
    stats.sparse_filled = sparse_filled_.load(std::memory_order_relaxed);
    stats.sparse_overflow = sparse_overflow_.load(std::memory_order_relaxed);
    stats.sparse_hits = sparse_hits_.load(std::memory_order_relaxed);
  }
  stats.bytes += outputs_.size() * sizeof(pp::OutputSymbol) +
                 inputs_.size() * sizeof(pp::StateId);
  return stats;
}

}  // namespace circles::kernel
