// Fundamental identifier types for the population-protocol substrate.
#pragma once

#include <cstdint>

namespace circles::pp {

/// Dense protocol-state identifier; each protocol defines its own encoding
/// over [0, num_states()).
using StateId = std::uint32_t;

/// Input color in [0, k).
using ColorId = std::uint32_t;

/// Output symbol. Values in [0, num_colors()) are colors; protocols may
/// define extra symbols at num_colors() and above (e.g. TieReport's TIE).
using OutputSymbol = std::uint32_t;

/// Agent index in [0, n).
using AgentId = std::uint32_t;

/// Result of one ordered interaction.
struct Transition {
  StateId initiator;
  StateId responder;

  bool operator==(const Transition&) const = default;
};

}  // namespace circles::pp
