// Exact silence detection.
//
// A configuration is *silent* when no scheduled interaction can change any
// state: for all ordered pairs (s, t) of present states (requiring count >= 2
// when s == t), transition(s, t) == (s, t). Silence certifies that outputs
// are stable forever — it is the strongest convergence certificate a finite
// run can produce, and all correctness experiments insist on it.
#pragma once

#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::pp {

bool is_silent(const Population& population, const Protocol& protocol);

/// Kernel variant: per-pair null-ness is a flag load (plus the adjacency
/// index when available), not a virtual transition() call.
bool is_silent(const Population& population,
               const kernel::CompiledProtocol& kernel);

}  // namespace circles::pp
