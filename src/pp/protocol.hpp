// The population-protocol abstraction (Angluin et al. 2006).
//
// A protocol is fully described by a finite state set, an input map from
// colors to states, an output map from states to output symbols, and a
// deterministic transition function over *ordered* pairs (initiator,
// responder). Symmetric protocols simply ignore the order. The transition
// function deliberately receives nothing but the two states: agents are
// anonymous and interactions carry no other information (model §1).
#pragma once

#include <cstdint>
#include <string>

#include "pp/types.hpp"

namespace circles::pp {

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Number of states; StateIds range over [0, num_states()).
  virtual std::uint64_t num_states() const = 0;

  /// Number of input colors k.
  virtual std::uint32_t num_colors() const = 0;

  /// Number of distinct output symbols (>= num_colors()). Symbols at index
  /// >= num_colors() are protocol-specific specials.
  virtual std::uint32_t num_output_symbols() const { return num_colors(); }

  /// Initial state for an agent with the given input color.
  virtual StateId input(ColorId color) const = 0;

  /// Output symbol announced by an agent in the given state.
  virtual OutputSymbol output(StateId state) const = 0;

  /// Joint transition for an ordered interaction.
  virtual Transition transition(StateId initiator, StateId responder) const = 0;

  /// Short machine-friendly protocol name (used in tables and CSV).
  virtual std::string name() const = 0;

  /// Debug rendering of a state; default is "s<id>".
  virtual std::string state_name(StateId state) const;

  /// Human-readable rendering of an output symbol; default prints colors as
  /// "c<id>" and other symbols as "sym<id>".
  virtual std::string output_name(OutputSymbol symbol) const;
};

}  // namespace circles::pp
