#include "pp/transition_cache.hpp"

#include "util/check.hpp"

namespace circles::pp {

CachedProtocol::CachedProtocol(const Protocol& base, std::uint64_t max_entries)
    : base_(base), num_states_(base.num_states()) {
  CIRCLES_CHECK_MSG(num_states_ * num_states_ <= max_entries,
                    "transition table would exceed the cache budget; pass a "
                    "larger max_entries if the memory cost is acceptable");
  table_.reserve(num_states_ * num_states_);
  for (StateId a = 0; a < num_states_; ++a) {
    for (StateId b = 0; b < num_states_; ++b) {
      table_.push_back(base.transition(a, b));
    }
  }
}

}  // namespace circles::pp
