#include "pp/transition_cache.hpp"

#include "util/check.hpp"

namespace circles::pp {

namespace {

kernel::CompileOptions dense_only(std::uint64_t max_entries) {
  kernel::CompileOptions options;
  options.max_dense_entries = max_entries;
  return options;
}

}  // namespace

CachedProtocol::CachedProtocol(const Protocol& base, std::uint64_t max_entries)
    : base_(base), kernel_(base, dense_only(max_entries)) {
  // A CachedProtocol promises one-array-load transitions; refuse to fall
  // back to the sparse cache silently.
  CIRCLES_CHECK_MSG(kernel_.kind() == kernel::TableKind::kDense,
                    "transition table would exceed the cache budget; pass a "
                    "larger max_entries if the memory cost is acceptable");
}

}  // namespace circles::pp
