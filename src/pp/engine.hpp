// The simulation engine: drives protocol x population x scheduler.
//
// Termination policy:
//  * For periodic schedulers (fairness_period() > 0) a change-free full
//    period is itself an exact silence proof: every ordered agent pair was
//    scheduled and none changed, hence no pair can change.
//  * Otherwise, after change-free streaks the engine runs the exact O(d^2)
//    silence check of silence.hpp, with exponential backoff so nearly-stable
//    phases are not dominated by checking.
//  * A hard interaction budget bounds runs of protocols that never silence.
#pragma once

#include <cstdint>
#include <span>

#include "pp/monitor.hpp"
#include "pp/population.hpp"
#include "pp/protocol.hpp"
#include "pp/run_result.hpp"
#include "pp/scheduler.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::metrics {
class MetricsRegistry;
}

namespace circles::trace {
class Tracer;
}

namespace circles::pp {

struct EngineOptions {
  /// Hard cap on interactions; runs hitting it report budget_exhausted.
  std::uint64_t max_interactions = 500'000'000;

  /// Stop as soon as silence is certified (otherwise run to the budget).
  bool stop_when_silent = true;

  /// First change-free streak length that triggers an exact silence check
  /// for non-periodic schedulers; doubles after every failed check.
  std::uint64_t initial_silence_streak = 64;

  /// Optional telemetry sink; every engine consuming EngineOptions (agent,
  /// gillespie, dense, fluid) flushes work counters into it at run
  /// boundaries. Null disables telemetry at zero hot-path cost; results are
  /// bitwise identical either way (metrics never touch an RNG stream).
  metrics::MetricsRegistry* metrics = nullptr;

  /// Optional span tracer; engines consuming EngineOptions emit phase spans
  /// and decimated work events into it (see src/trace/). Same contract as
  /// `metrics`: null disables tracing at the cost of a pointer test, and
  /// spans-on vs spans-off runs are bitwise identical on every backend
  /// (tracing never touches an RNG stream or reorders work).
  trace::Tracer* tracer = nullptr;

  /// Worker threads INSIDE one run. Only the dense engine consumes it (the
  /// multi-urn batched epoch stages fan out across util::ThreadPool::
  /// shared()); the agent/gillespie/fluid engines are inherently serial per
  /// run and ignore it. 1 (default) = fully serial; 0 = one thread per
  /// hardware core; results are bitwise identical for every value (the
  /// parallel stages reduce in a deterministic order). Across-trial
  /// parallelism is a different knob: BatchOptions::threads.
  std::uint32_t run_threads = 1;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {}) : options_(options) {}

  /// Runs until silence (if enabled) or budget exhaustion. Monitors are
  /// optional and may be empty. Compiles a one-shot kernel::CompiledProtocol
  /// internally, so the interaction loop makes no virtual transition()
  /// calls; callers running many trials of one protocol should compile the
  /// kernel once themselves and use the overload below.
  RunResult run(const Protocol& protocol, Population& population,
                Scheduler& scheduler, std::span<Monitor* const> monitors = {});

  /// Same loop over a prebuilt kernel (the BatchRunner compiles one per
  /// spec and shares it across trials and threads).
  RunResult run(const kernel::CompiledProtocol& kernel, Population& population,
                Scheduler& scheduler, std::span<Monitor* const> monitors = {});

  /// The legacy loop paying one virtual transition() call per interaction.
  /// Kept solely as the baseline the bench_throughput virtual-vs-compiled
  /// section measures against; results are bitwise identical to run().
  RunResult run_virtual(const Protocol& protocol, Population& population,
                        Scheduler& scheduler,
                        std::span<Monitor* const> monitors = {});

  const EngineOptions& options() const { return options_; }

 private:
  EngineOptions options_;
};

/// Convenience: build a population from colors, run, and return the result.
RunResult run_protocol(const Protocol& protocol,
                       std::span<const ColorId> colors, Scheduler& scheduler,
                       EngineOptions options = {},
                       std::span<Monitor* const> monitors = {});

}  // namespace circles::pp
