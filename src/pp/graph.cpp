#include "pp/graph.hpp"

#include <algorithm>
#include <set>
#include <span>

#include "util/check.hpp"

namespace circles::pp {

InteractionGraph InteractionGraph::complete(std::uint32_t n) {
  CIRCLES_CHECK(n >= 2);
  InteractionGraph g;
  g.n = n;
  g.name = "complete";
  for (AgentId a = 0; a < n; ++a) {
    for (AgentId b = a + 1; b < n; ++b) g.edges.push_back({a, b});
  }
  return g;
}

InteractionGraph InteractionGraph::ring(std::uint32_t n) {
  CIRCLES_CHECK(n >= 3);
  InteractionGraph g;
  g.n = n;
  g.name = "ring";
  for (AgentId a = 0; a < n; ++a) {
    const AgentId b = (a + 1) % n;
    g.edges.push_back({std::min(a, b), std::max(a, b)});
  }
  std::sort(g.edges.begin(), g.edges.end());
  g.edges.erase(std::unique(g.edges.begin(), g.edges.end()), g.edges.end());
  return g;
}

InteractionGraph InteractionGraph::star(std::uint32_t n) {
  CIRCLES_CHECK(n >= 2);
  InteractionGraph g;
  g.n = n;
  g.name = "star";
  for (AgentId b = 1; b < n; ++b) g.edges.push_back({0, b});
  return g;
}

InteractionGraph InteractionGraph::grid(std::uint32_t rows,
                                        std::uint32_t cols) {
  CIRCLES_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  InteractionGraph g;
  g.n = rows * cols;
  g.name = "grid";
  auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<AgentId>(r * cols + c);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.edges.push_back({id(r, c), id(r, c + 1)});
      if (r + 1 < rows) g.edges.push_back({id(r, c), id(r + 1, c)});
    }
  }
  return g;
}

InteractionGraph InteractionGraph::random_regular(std::uint32_t n,
                                                  std::uint32_t d,
                                                  std::uint64_t seed) {
  CIRCLES_CHECK(d >= 1 && d < n);
  CIRCLES_CHECK_MSG((static_cast<std::uint64_t>(n) * d) % 2 == 0,
                    "n*d must be even for a d-regular graph");
  util::Rng rng(seed);
  for (int attempt = 0; attempt < 1000; ++attempt) {
    // Pairing model: d stubs per vertex, random perfect matching.
    std::vector<AgentId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (AgentId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(std::span<AgentId>(stubs));
    std::set<std::pair<AgentId, AgentId>> edges;
    bool simple = true;
    for (std::size_t i = 0; i + 1 < stubs.size() && simple; i += 2) {
      const AgentId a = std::min(stubs[i], stubs[i + 1]);
      const AgentId b = std::max(stubs[i], stubs[i + 1]);
      if (a == b || !edges.insert({a, b}).second) simple = false;
    }
    if (!simple) continue;
    InteractionGraph g;
    g.n = n;
    g.name = "random_" + std::to_string(d) + "_regular";
    g.edges.assign(edges.begin(), edges.end());
    if (g.connected()) return g;
  }
  CIRCLES_CHECK_MSG(false, "failed to sample a connected d-regular graph");
  return {};
}

bool InteractionGraph::connected() const {
  if (n == 0) return false;
  std::vector<std::vector<AgentId>> adjacency(n);
  for (const auto& [a, b] : edges) {
    adjacency[a].push_back(b);
    adjacency[b].push_back(a);
  }
  std::vector<bool> seen(n, false);
  std::vector<AgentId> stack{0};
  seen[0] = true;
  std::uint32_t visited = 1;
  while (!stack.empty()) {
    const AgentId v = stack.back();
    stack.pop_back();
    for (const AgentId w : adjacency[v]) {
      if (!seen[w]) {
        seen[w] = true;
        ++visited;
        stack.push_back(w);
      }
    }
  }
  return visited == n;
}

GraphScheduler::GraphScheduler(InteractionGraph graph,
                               GraphSchedulerMode mode, std::uint64_t seed)
    : graph_(std::move(graph)), mode_(mode), rng_(seed) {
  CIRCLES_CHECK_MSG(!graph_.edges.empty(), "graph has no edges");
  for (const auto& [a, b] : graph_.edges) {
    CIRCLES_CHECK(a < graph_.n && b < graph_.n && a != b);
    directed_.push_back({a, b});
    directed_.push_back({b, a});
  }
  if (mode_ == GraphSchedulerMode::kShuffledSweep) {
    rng_.shuffle(std::span<AgentPair>(directed_));
  }
}

AgentPair GraphScheduler::next(const Population&) {
  if (cursor_ == directed_.size()) {
    cursor_ = 0;
    if (mode_ == GraphSchedulerMode::kShuffledSweep) {
      rng_.shuffle(std::span<AgentPair>(directed_));
    }
  }
  return directed_[cursor_++];
}

std::uint64_t GraphScheduler::fairness_period() const {
  // Round robin: any window of 2|E| steps is a full directed-edge cycle.
  // Shuffled: any window of 2*(2|E|)-1 steps contains one complete sweep.
  return mode_ == GraphSchedulerMode::kRoundRobin
             ? directed_.size()
             : 2 * directed_.size() - 1;
}

std::string GraphScheduler::name() const {
  return "graph_" + graph_.name +
         (mode_ == GraphSchedulerMode::kRoundRobin ? "_rr" : "_shuffled");
}

}  // namespace circles::pp
