#include "pp/population.hpp"

#include <algorithm>
#include <sstream>

#include "util/check.hpp"

namespace circles::pp {

Population::Population(const Protocol& protocol,
                       std::span<const ColorId> colors)
    : counts_(protocol.num_states(), 0) {
  agents_.reserve(colors.size());
  for (const ColorId color : colors) {
    CIRCLES_CHECK_MSG(color < protocol.num_colors(),
                      "input color out of range");
    const StateId s = protocol.input(color);
    CIRCLES_CHECK(s < counts_.size());
    agents_.push_back(s);
    if (counts_[s]++ == 0) present_.insert(s);
  }
}

Population::Population(std::uint64_t num_states,
                       std::span<const StateId> states)
    : counts_(num_states, 0) {
  agents_.reserve(states.size());
  for (const StateId s : states) {
    CIRCLES_CHECK(s < counts_.size());
    agents_.push_back(s);
    if (counts_[s]++ == 0) present_.insert(s);
  }
}

void Population::set_state(AgentId agent, StateId next) {
  CIRCLES_DCHECK(agent < agents_.size());
  CIRCLES_DCHECK(next < counts_.size());
  const StateId prev = agents_[agent];
  if (prev == next) return;
  agents_[agent] = next;
  if (--counts_[prev] == 0) present_.erase(prev);
  if (counts_[next]++ == 0) present_.insert(next);
}

std::vector<StateId> Population::present_states() const {
  std::vector<StateId> out(present_.begin(), present_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint64_t> Population::output_histogram(
    const Protocol& protocol) const {
  std::vector<std::uint64_t> hist(protocol.num_output_symbols(), 0);
  for (const StateId s : present_states()) {
    const OutputSymbol o = protocol.output(s);
    CIRCLES_CHECK(o < hist.size());
    hist[o] += counts_[s];
  }
  return hist;
}

bool Population::output_consensus(const Protocol& protocol,
                                  OutputSymbol symbol) const {
  for (const StateId s : present_states()) {
    if (protocol.output(s) != symbol) return false;
  }
  return true;
}

std::string Population::to_string(const Protocol& protocol) const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const StateId s : present_states()) {
    if (!first) os << ", ";
    first = false;
    os << protocol.state_name(s) << " x" << counts_[s];
  }
  os << '}';
  return os.str();
}

}  // namespace circles::pp
