// Monitors observe every interaction the engine executes.
//
// Tests plug in invariant checkers (bra-ket conservation, potential descent);
// experiments plug in counters and energy traces. Monitors see the states
// both before and after the transition was applied.
#pragma once

#include <cstdint>

#include "pp/population.hpp"
#include "pp/types.hpp"

namespace circles::pp {

struct InteractionEvent {
  std::uint64_t step;  // 0-based interaction index
  AgentId initiator;
  AgentId responder;
  StateId initiator_before;
  StateId responder_before;
  StateId initiator_after;
  StateId responder_after;

  bool changed() const {
    return initiator_before != initiator_after ||
           responder_before != responder_after;
  }
};

class Monitor {
 public:
  virtual ~Monitor() = default;

  /// Called once before the first interaction.
  virtual void on_start(const Population& population,
                        const Protocol& protocol) {
    (void)population;
    (void)protocol;
  }

  /// Called after each interaction has been applied to the population.
  virtual void on_interaction(const InteractionEvent& event,
                              const Population& population) {
    (void)event;
    (void)population;
  }

  /// Called once when the run ends.
  virtual void on_finish(const Population& population) { (void)population; }
};

}  // namespace circles::pp
