// A population: the agent vector plus the configuration multiset
// (Definition 1.1) maintained incrementally as per-state counts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/types.hpp"

namespace circles::pp {

class Population {
 public:
  /// Builds a population whose agent i starts in protocol.input(colors[i]).
  Population(const Protocol& protocol, std::span<const ColorId> colors);

  /// Builds a population directly from explicit states (for tests).
  Population(std::uint64_t num_states, std::span<const StateId> states);

  std::uint32_t size() const { return static_cast<std::uint32_t>(agents_.size()); }
  std::uint64_t num_states() const { return counts_.size(); }

  StateId state(AgentId agent) const { return agents_[agent]; }

  /// Updates one agent's state, maintaining counts and the present-state set.
  void set_state(AgentId agent, StateId next);

  std::uint64_t count(StateId state) const { return counts_[state]; }
  /// The full per-state count vector (indexed by StateId) — the snapshot
  /// shape the obs:: probes consume.
  std::span<const std::uint64_t> counts() const { return counts_; }
  std::span<const StateId> agents() const { return agents_; }

  /// Number of distinct states currently present.
  std::size_t distinct_states() const { return present_.size(); }

  /// Sorted list of the distinct states currently present.
  std::vector<StateId> present_states() const;

  /// Histogram of output symbols under `protocol` (sized num_output_symbols).
  std::vector<std::uint64_t> output_histogram(const Protocol& protocol) const;

  /// True iff all agents announce `symbol`.
  bool output_consensus(const Protocol& protocol, OutputSymbol symbol) const;

  /// Debug rendering: sorted "state_name x count" list.
  std::string to_string(const Protocol& protocol) const;

 private:
  std::vector<StateId> agents_;
  std::vector<std::uint64_t> counts_;
  std::unordered_set<StateId> present_;
};

}  // namespace circles::pp
