// Reusable monitors: interaction recording, output-stability tracking, and
// state-change counting.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/monitor.hpp"

namespace circles::pp {

/// Records interaction events up to a cap (tests and debugging).
class InteractionRecorder final : public Monitor {
 public:
  explicit InteractionRecorder(std::size_t max_events = 1 << 20)
      : max_events_(max_events) {}

  void on_interaction(const InteractionEvent& event,
                      const Population& population) override;

  const std::vector<InteractionEvent>& events() const { return events_; }
  bool truncated() const { return truncated_; }

 private:
  std::size_t max_events_;
  std::vector<InteractionEvent> events_;
  bool truncated_ = false;
};

/// Tracks when agent outputs last changed; convergence-time experiments use
/// the last step at which any agent's announced output flipped.
class OutputStabilityMonitor final : public Monitor {
 public:
  void on_start(const Population& population,
                const Protocol& protocol) override;
  void on_interaction(const InteractionEvent& event,
                      const Population& population) override;

  /// Step index (+1) of the last output flip; 0 if outputs never changed.
  std::uint64_t last_output_change() const { return last_output_change_; }
  std::uint64_t total_output_flips() const { return total_flips_; }

 private:
  const Protocol* protocol_ = nullptr;
  std::uint64_t last_output_change_ = 0;
  std::uint64_t total_flips_ = 0;
};

/// Counts interactions satisfying a caller-supplied predicate over events.
class StateChangeCounter final : public Monitor {
 public:
  void on_interaction(const InteractionEvent& event,
                      const Population& population) override;

  std::uint64_t changes() const { return changes_; }
  std::uint64_t nulls() const { return nulls_; }

 private:
  std::uint64_t changes_ = 0;
  std::uint64_t nulls_ = 0;
};

}  // namespace circles::pp
