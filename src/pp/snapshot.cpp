#include "pp/snapshot.hpp"

#include <sstream>
#include <stdexcept>

namespace circles::pp {

namespace {
constexpr char kMagic[] = "circles-snapshot v1";

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("snapshot: " + what);
}
}  // namespace

std::string serialize_population(const Population& population,
                                 const Protocol& protocol) {
  std::ostringstream os;
  os << kMagic << '\n';
  os << "protocol " << protocol.name() << '\n';
  os << "num_states " << protocol.num_states() << '\n';
  os << "agents " << population.size() << '\n';
  for (const StateId s : population.present_states()) {
    os << s << ' ' << population.count(s) << '\n';
  }
  return os.str();
}

Population parse_population(const std::string& text,
                            const Protocol& protocol) {
  std::istringstream is(text);
  std::string line;

  if (!std::getline(is, line) || line != kMagic) fail("bad magic line");

  std::string word, name;
  if (!(is >> word >> name) || word != "protocol") fail("missing protocol");
  if (name != protocol.name()) {
    fail("protocol mismatch: snapshot is for '" + name + "', got '" +
         protocol.name() + "'");
  }

  std::uint64_t num_states = 0;
  if (!(is >> word >> num_states) || word != "num_states") {
    fail("missing num_states");
  }
  if (num_states != protocol.num_states()) fail("state-count mismatch");

  std::uint64_t agents = 0;
  if (!(is >> word >> agents) || word != "agents") fail("missing agents");

  std::vector<StateId> states;
  states.reserve(agents);
  std::uint64_t state = 0, count = 0;
  while (is >> state >> count) {
    if (state >= num_states) fail("state id out of range");
    if (count == 0) fail("zero count entry");
    states.insert(states.end(), count, static_cast<StateId>(state));
    if (states.size() > agents) fail("counts exceed agent total");
  }
  if (states.size() != agents) fail("counts do not sum to agent total");
  return Population(protocol.num_states(), states);
}

}  // namespace circles::pp
