// Result of one engine run.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/types.hpp"

namespace circles::pp {

struct RunResult {
  /// Total interactions executed (including null interactions).
  std::uint64_t interactions = 0;

  /// Interactions that changed at least one agent's state.
  std::uint64_t state_changes = 0;

  /// Step index of the last state change (0 if none happened).
  std::uint64_t last_change_step = 0;

  /// True iff the run ended with an exact silence certificate.
  bool silent = false;

  /// True iff the run stopped because the interaction budget ran out.
  bool budget_exhausted = false;

  /// Output-symbol histogram of the final configuration.
  std::vector<std::uint64_t> final_outputs;

  /// True iff every agent announced `symbol` at the end.
  bool consensus_on(OutputSymbol symbol) const {
    if (symbol >= final_outputs.size()) return false;
    std::uint64_t total = 0;
    for (const auto c : final_outputs) total += c;
    return final_outputs[symbol] == total && total > 0;
  }
};

}  // namespace circles::pp
