// Scheduler interface: produces the infinite interaction sequence.
//
// The paper quantifies correctness over *all* weakly fair schedules
// (Definition 1.2: every pair occurs infinitely often). Finite simulations
// use schedulers that are weakly fair in the limit; the zoo in schedulers/
// covers deterministic, randomized and adversarial members.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "pp/population.hpp"
#include "pp/types.hpp"

namespace circles::pp {

struct AgentPair {
  AgentId initiator;
  AgentId responder;
};

/// Exact-lumping contract for count-level simulation.
///
/// A scheduler is *urn-lumpable* when its next() is equivalent to: draw an
/// ordered urn pair (u, v) with probability rates[u * U + v], independent of
/// history and of the population's states; then draw the initiator uniformly
/// from urn u and the responder uniformly from urn v (distinct agents when
/// u == v). Urn u consists of the agent-id range
/// [sizes[0]+...+sizes[u-1], sizes[0]+...+sizes[u]). Because agents within
/// an urn are exchangeable under this contract, the per-urn count process is
/// an exact lumping of the agent process — the dense urn engine simulates
/// precisely this chain.
struct UrnLumping {
  std::vector<std::uint64_t> sizes;  // per-urn agent counts; sum = n
  /// Row-major U x U ordered-block probabilities; entries sum to 1. A zero
  /// entry means that ordered block is never scheduled.
  std::vector<double> rates;

  std::size_t num_urns() const { return sizes.size(); }
  double rate(std::size_t u, std::size_t v) const {
    return rates[u * sizes.size() + v];
  }
  std::uint64_t n() const {
    std::uint64_t total = 0;
    for (const auto s : sizes) total += s;
    return total;
  }

  /// The complete-graph uniform scheduler: one urn, rate 1.
  static UrnLumping uniform(std::uint64_t n) {
    return UrnLumping{.sizes = {n}, .rates = {1.0}};
  }

  /// Structural sanity: sizes non-empty and positive, rates shaped U x U,
  /// non-negative, summing to 1 (within 1e-9), diagonal blocks of
  /// single-agent urns unreachable. Throws std::invalid_argument otherwise.
  void validate() const;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Next ordered pair to interact. The population is visible so that
  /// state-aware (adversarial) schedulers can be expressed; oblivious
  /// schedulers ignore it.
  virtual AgentPair next(const Population& population) = 0;

  /// For deterministic periodic schedulers: the number of steps after which
  /// every ordered agent pair is guaranteed to have been scheduled at least
  /// once. 0 means "no such guarantee" (randomized schedulers).
  virtual std::uint64_t fairness_period() const { return 0; }

  /// The scheduler's exact lumping, when one exists — "am I count-simulable?"
  /// Engines that simulate counts instead of agents (dense::DenseEngine) ask
  /// this and mirror the returned block structure exactly. Must not depend
  /// on the seed. Default: no lumping (deterministic sweeps, adversaries and
  /// graph-restricted schedulers are not exchangeable within any partition).
  virtual std::optional<UrnLumping> lumping() const { return std::nullopt; }

  virtual std::string name() const = 0;
};

/// Shape parameters for the clustered scheduler (and, through lumping(), for
/// the dense urn engine). Either `sizes` fixes the clusters explicitly, or
/// `num_clusters` splits n as evenly as possible (remainder spread over the
/// trailing clusters, matching the historical n/2 | n - n/2 split at U = 2).
struct ClusteredOptions {
  std::vector<std::uint64_t> sizes;  // explicit per-cluster sizes (sum = n)
  std::uint32_t num_clusters = 2;    // used when sizes is empty
  /// Total probability mass of inter-cluster ("bridge") interactions,
  /// split evenly over the U(U-1) ordered cross blocks; the remaining
  /// 1 - bridge_probability is split evenly over the U intra blocks.
  double bridge_probability = 0.01;

  /// Per-cluster sizes for a population of n agents.
  std::vector<std::uint64_t> resolve_sizes(std::uint64_t n) const;
};

/// The scheduler kinds available through the factory.
enum class SchedulerKind {
  kUniformRandom,
  kRoundRobin,
  kShuffledSweep,
  kAdversarialDelay,
  kClustered,
};

/// Builds a scheduler for a population of n agents. `protocol` is required
/// only by kAdversarialDelay (it inspects transitions to find null
/// interactions) and may be null otherwise; `seed` feeds randomized kinds.
/// `clustered`, when non-null, shapes kClustered (ignored by other kinds).
std::unique_ptr<Scheduler> make_scheduler(
    SchedulerKind kind, std::uint32_t n, std::uint64_t seed,
    const Protocol* protocol = nullptr,
    const ClusteredOptions* clustered = nullptr);

/// Parses "uniform", "round_robin", "shuffled", "adversarial", "clustered".
SchedulerKind scheduler_kind_from_string(const std::string& text);
std::string to_string(SchedulerKind kind);

/// All kinds, for sweep experiments.
inline constexpr SchedulerKind kAllSchedulerKinds[] = {
    SchedulerKind::kUniformRandom,    SchedulerKind::kRoundRobin,
    SchedulerKind::kShuffledSweep,    SchedulerKind::kAdversarialDelay,
    SchedulerKind::kClustered,
};

}  // namespace circles::pp
