// Scheduler interface: produces the infinite interaction sequence.
//
// The paper quantifies correctness over *all* weakly fair schedules
// (Definition 1.2: every pair occurs infinitely often). Finite simulations
// use schedulers that are weakly fair in the limit; the zoo in schedulers/
// covers deterministic, randomized and adversarial members.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "pp/population.hpp"
#include "pp/types.hpp"

namespace circles::pp {

struct AgentPair {
  AgentId initiator;
  AgentId responder;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Next ordered pair to interact. The population is visible so that
  /// state-aware (adversarial) schedulers can be expressed; oblivious
  /// schedulers ignore it.
  virtual AgentPair next(const Population& population) = 0;

  /// For deterministic periodic schedulers: the number of steps after which
  /// every ordered agent pair is guaranteed to have been scheduled at least
  /// once. 0 means "no such guarantee" (randomized schedulers).
  virtual std::uint64_t fairness_period() const { return 0; }

  virtual std::string name() const = 0;
};

/// The scheduler kinds available through the factory.
enum class SchedulerKind {
  kUniformRandom,
  kRoundRobin,
  kShuffledSweep,
  kAdversarialDelay,
  kClustered,
};

/// Builds a scheduler for a population of n agents. `protocol` is required
/// only by kAdversarialDelay (it inspects transitions to find null
/// interactions) and may be null otherwise; `seed` feeds randomized kinds.
std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint32_t n,
                                          std::uint64_t seed,
                                          const Protocol* protocol = nullptr);

/// Parses "uniform", "round_robin", "shuffled", "adversarial", "clustered".
SchedulerKind scheduler_kind_from_string(const std::string& text);
std::string to_string(SchedulerKind kind);

/// All kinds, for sweep experiments.
inline constexpr SchedulerKind kAllSchedulerKinds[] = {
    SchedulerKind::kUniformRandom,    SchedulerKind::kRoundRobin,
    SchedulerKind::kShuffledSweep,    SchedulerKind::kAdversarialDelay,
    SchedulerKind::kClustered,
};

}  // namespace circles::pp
