// The classic probabilistic scheduler: each step picks an ordered pair of
// distinct agents uniformly at random. Globally fair with probability 1,
// hence also weakly fair with probability 1.
#pragma once

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::pp {

class UniformRandomScheduler final : public Scheduler {
 public:
  UniformRandomScheduler(std::uint32_t n, std::uint64_t seed);

  AgentPair next(const Population& population) override;
  /// Trivially lumpable: one urn holding everyone, rate 1 — the complete
  /// graph the dense engines have always simulated.
  std::optional<UrnLumping> lumping() const override {
    return UrnLumping::uniform(n_);
  }
  std::string name() const override { return "uniform"; }

 private:
  std::uint32_t n_;
  util::Rng rng_;
};

}  // namespace circles::pp
