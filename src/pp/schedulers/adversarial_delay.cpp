#include "pp/schedulers/adversarial_delay.hpp"

#include "util/check.hpp"

namespace circles::pp {

AdversarialDelayScheduler::AdversarialDelayScheduler(std::uint32_t n,
                                                     const Protocol& protocol,
                                                     std::uint32_t fairness_stride)
    : n_(n), protocol_(protocol), fairness_stride_(fairness_stride) {
  CIRCLES_CHECK_MSG(n >= 2, "scheduler needs at least two agents");
  CIRCLES_CHECK_MSG(fairness_stride >= 1, "fairness stride must be positive");
}

AgentPair AdversarialDelayScheduler::round_robin_pair() {
  const AgentPair out{rr_i_, rr_j_};
  do {
    if (++rr_j_ == n_) {
      rr_j_ = 0;
      if (++rr_i_ == n_) rr_i_ = 0;
    }
  } while (rr_i_ == rr_j_);
  return out;
}

std::optional<AgentPair> AdversarialDelayScheduler::find_null_pair(
    const Population& population) const {
  const auto present = population.present_states();
  StateId want_a = 0, want_b = 0;
  bool found = false;
  for (const StateId s : present) {
    for (const StateId t : present) {
      if (s == t && population.count(s) < 2) continue;
      const Transition tr = protocol_.transition(s, t);
      if (tr.initiator == s && tr.responder == t) {
        want_a = s;
        want_b = t;
        found = true;
        break;
      }
    }
    if (found) break;
  }
  if (!found) return std::nullopt;

  // Locate concrete agents carrying those states (first match scan; the
  // adversary does not need randomness, only legality).
  AgentId a = 0;
  bool have_a = false;
  for (AgentId i = 0; i < n_; ++i) {
    const StateId s = population.state(i);
    if (!have_a && s == want_a) {
      a = i;
      have_a = true;
      continue;  // a and b must be distinct agents even if states match
    }
    if (have_a && s == want_b) return AgentPair{a, i};
  }
  // want_b may sit at a smaller index than want_a when the states differ.
  if (want_a != want_b) {
    AgentId b = 0;
    bool have_b = false;
    for (AgentId i = 0; i < n_; ++i) {
      const StateId s = population.state(i);
      if (!have_b && s == want_b) {
        b = i;
        have_b = true;
        continue;
      }
      if (have_b && s == want_a) return AgentPair{i, b};
    }
  }
  return std::nullopt;
}

AgentPair AdversarialDelayScheduler::next(const Population& population) {
  const std::uint64_t step = step_++;
  if (step % fairness_stride_ == 0) return round_robin_pair();
  if (auto pair = find_null_pair(population)) return *pair;
  return round_robin_pair();
}

}  // namespace circles::pp
