// Randomized sweeps: each period visits every ordered pair exactly once, in a
// freshly shuffled order. Weakly fair by construction and still randomized,
// which catches order-dependence bugs that plain round-robin can mask.
//
// Materializes all n(n-1) ordered pairs, so intended for n <= ~1024.
#pragma once

#include <vector>

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::pp {

class ShuffledSweepScheduler final : public Scheduler {
 public:
  ShuffledSweepScheduler(std::uint32_t n, std::uint64_t seed);

  AgentPair next(const Population& population) override;
  /// A window of n(n-1) steps can straddle two differently-shuffled sweeps
  /// and miss pairs; any window of 2·n(n-1)−1 consecutive steps contains at
  /// least one complete sweep, which visits every ordered pair.
  std::uint64_t fairness_period() const override {
    return 2 * pairs_.size() - 1;
  }
  std::string name() const override { return "shuffled"; }

 private:
  std::vector<AgentPair> pairs_;
  std::size_t cursor_ = 0;
  util::Rng rng_;
};

}  // namespace circles::pp
