// Deterministic round-robin over all ordered pairs (i, j), i != j, in
// lexicographic order. Weakly fair by construction: every ordered pair occurs
// exactly once per period of n(n-1) steps.
#pragma once

#include "pp/scheduler.hpp"

namespace circles::pp {

class RoundRobinScheduler final : public Scheduler {
 public:
  explicit RoundRobinScheduler(std::uint32_t n);

  AgentPair next(const Population& population) override;
  std::uint64_t fairness_period() const override {
    return static_cast<std::uint64_t>(n_) * (n_ - 1);
  }
  std::string name() const override { return "round_robin"; }

 private:
  std::uint32_t n_;
  std::uint32_t i_ = 0;
  std::uint32_t j_ = 1;
};

}  // namespace circles::pp
