#include "pp/schedulers/round_robin.hpp"

#include "util/check.hpp"

namespace circles::pp {

RoundRobinScheduler::RoundRobinScheduler(std::uint32_t n) : n_(n) {
  CIRCLES_CHECK_MSG(n >= 2, "scheduler needs at least two agents");
}

AgentPair RoundRobinScheduler::next(const Population&) {
  const AgentPair out{i_, j_};
  // Advance (i, j) over all ordered pairs with i != j.
  do {
    if (++j_ == n_) {
      j_ = 0;
      if (++i_ == n_) i_ = 0;
    }
  } while (i_ == j_);
  return out;
}

}  // namespace circles::pp
