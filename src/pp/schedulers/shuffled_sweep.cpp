#include "pp/schedulers/shuffled_sweep.hpp"

#include <span>

#include "util/check.hpp"

namespace circles::pp {

ShuffledSweepScheduler::ShuffledSweepScheduler(std::uint32_t n,
                                               std::uint64_t seed)
    : rng_(seed) {
  CIRCLES_CHECK_MSG(n >= 2, "scheduler needs at least two agents");
  CIRCLES_CHECK_MSG(n <= 1024,
                    "ShuffledSweepScheduler materializes n(n-1) pairs; use the "
                    "uniform scheduler for large populations");
  pairs_.reserve(static_cast<std::size_t>(n) * (n - 1));
  for (AgentId i = 0; i < n; ++i) {
    for (AgentId j = 0; j < n; ++j) {
      if (i != j) pairs_.push_back({i, j});
    }
  }
  rng_.shuffle(std::span<AgentPair>(pairs_));
}

AgentPair ShuffledSweepScheduler::next(const Population&) {
  if (cursor_ == pairs_.size()) {
    rng_.shuffle(std::span<AgentPair>(pairs_));
    cursor_ = 0;
  }
  return pairs_[cursor_++];
}

}  // namespace circles::pp
