#include <stdexcept>

#include "pp/scheduler.hpp"
#include "pp/schedulers/adversarial_delay.hpp"
#include "pp/schedulers/clustered.hpp"
#include "pp/schedulers/round_robin.hpp"
#include "pp/schedulers/shuffled_sweep.hpp"
#include "pp/schedulers/uniform_random.hpp"
#include "util/check.hpp"

namespace circles::pp {

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint32_t n,
                                          std::uint64_t seed,
                                          const Protocol* protocol) {
  switch (kind) {
    case SchedulerKind::kUniformRandom:
      return std::make_unique<UniformRandomScheduler>(n, seed);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(n);
    case SchedulerKind::kShuffledSweep:
      return std::make_unique<ShuffledSweepScheduler>(n, seed);
    case SchedulerKind::kAdversarialDelay:
      CIRCLES_CHECK_MSG(protocol != nullptr,
                        "adversarial scheduler needs the protocol");
      return std::make_unique<AdversarialDelayScheduler>(n, *protocol);
    case SchedulerKind::kClustered:
      return std::make_unique<ClusteredScheduler>(n, seed);
  }
  throw std::invalid_argument("unknown scheduler kind");
}

SchedulerKind scheduler_kind_from_string(const std::string& text) {
  if (text == "uniform") return SchedulerKind::kUniformRandom;
  if (text == "round_robin") return SchedulerKind::kRoundRobin;
  if (text == "shuffled") return SchedulerKind::kShuffledSweep;
  if (text == "adversarial") return SchedulerKind::kAdversarialDelay;
  if (text == "clustered") return SchedulerKind::kClustered;
  throw std::invalid_argument("unknown scheduler name: " + text);
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kUniformRandom:
      return "uniform";
    case SchedulerKind::kRoundRobin:
      return "round_robin";
    case SchedulerKind::kShuffledSweep:
      return "shuffled";
    case SchedulerKind::kAdversarialDelay:
      return "adversarial";
    case SchedulerKind::kClustered:
      return "clustered";
  }
  return "unknown";
}

}  // namespace circles::pp
