#include <stdexcept>

#include "pp/scheduler.hpp"
#include "pp/schedulers/adversarial_delay.hpp"
#include "pp/schedulers/clustered.hpp"
#include "pp/schedulers/round_robin.hpp"
#include "pp/schedulers/shuffled_sweep.hpp"
#include "pp/schedulers/uniform_random.hpp"
#include "util/check.hpp"

namespace circles::pp {

void UrnLumping::validate() const {
  if (sizes.empty()) {
    throw std::invalid_argument("urn lumping needs at least one urn");
  }
  if (rates.size() != sizes.size() * sizes.size()) {
    throw std::invalid_argument(
        "urn lumping rate matrix must be num_urns x num_urns");
  }
  for (const std::uint64_t size : sizes) {
    if (size == 0) {
      throw std::invalid_argument("urn lumping forbids empty urns");
    }
  }
  double total = 0.0;
  for (std::size_t u = 0; u < sizes.size(); ++u) {
    for (std::size_t v = 0; v < sizes.size(); ++v) {
      const double r = rates[u * sizes.size() + v];
      if (!(r >= 0.0)) {
        throw std::invalid_argument("urn lumping rates must be non-negative");
      }
      if (u == v && r > 0.0 && sizes[u] < 2) {
        throw std::invalid_argument(
            "urn lumping schedules an intra block on a single-agent urn");
      }
      total += r;
    }
  }
  if (total < 1.0 - 1e-9 || total > 1.0 + 1e-9) {
    throw std::invalid_argument("urn lumping rates must sum to 1");
  }
}

std::vector<std::uint64_t> ClusteredOptions::resolve_sizes(
    std::uint64_t n) const {
  if (!sizes.empty()) {
    std::uint64_t total = 0;
    for (const std::uint64_t s : sizes) total += s;
    if (total != n) {
      throw std::invalid_argument(
          "clustered sizes sum to " + std::to_string(total) +
          " but the population has " + std::to_string(n) + " agents");
    }
    return sizes;
  }
  if (num_clusters == 0 || num_clusters > n) {
    throw std::invalid_argument(
        "clustered scheduler needs 1 <= num_clusters <= n");
  }
  // Even split; the remainder lands on the trailing clusters, matching the
  // historical n/2 | n - n/2 dumbbell at num_clusters = 2.
  const std::uint64_t base = n / num_clusters;
  const std::uint64_t rem = n % num_clusters;
  std::vector<std::uint64_t> out(num_clusters, base);
  for (std::uint64_t i = 0; i < rem; ++i) {
    out[num_clusters - 1 - i] += 1;
  }
  return out;
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerKind kind, std::uint32_t n,
                                          std::uint64_t seed,
                                          const Protocol* protocol,
                                          const ClusteredOptions* clustered) {
  switch (kind) {
    case SchedulerKind::kUniformRandom:
      return std::make_unique<UniformRandomScheduler>(n, seed);
    case SchedulerKind::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(n);
    case SchedulerKind::kShuffledSweep:
      return std::make_unique<ShuffledSweepScheduler>(n, seed);
    case SchedulerKind::kAdversarialDelay:
      CIRCLES_CHECK_MSG(protocol != nullptr,
                        "adversarial scheduler needs the protocol");
      return std::make_unique<AdversarialDelayScheduler>(n, *protocol);
    case SchedulerKind::kClustered:
      if (clustered != nullptr) {
        return std::make_unique<ClusteredScheduler>(n, seed, *clustered);
      }
      return std::make_unique<ClusteredScheduler>(n, seed);
  }
  throw std::invalid_argument("unknown scheduler kind");
}

SchedulerKind scheduler_kind_from_string(const std::string& text) {
  if (text == "uniform") return SchedulerKind::kUniformRandom;
  if (text == "round_robin") return SchedulerKind::kRoundRobin;
  if (text == "shuffled") return SchedulerKind::kShuffledSweep;
  if (text == "adversarial") return SchedulerKind::kAdversarialDelay;
  if (text == "clustered") return SchedulerKind::kClustered;
  throw std::invalid_argument("unknown scheduler name: " + text);
}

std::string to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kUniformRandom:
      return "uniform";
    case SchedulerKind::kRoundRobin:
      return "round_robin";
    case SchedulerKind::kShuffledSweep:
      return "shuffled";
    case SchedulerKind::kAdversarialDelay:
      return "adversarial";
    case SchedulerKind::kClustered:
      return "clustered";
  }
  return "unknown";
}

}  // namespace circles::pp
