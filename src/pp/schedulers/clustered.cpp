#include "pp/schedulers/clustered.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace circles::pp {

UrnLumping clustered_lumping(std::uint64_t n, const ClusteredOptions& options) {
  UrnLumping lumping;
  lumping.sizes = options.resolve_sizes(n);
  const std::size_t u_count = lumping.sizes.size();
  lumping.rates.assign(u_count * u_count, 0.0);
  if (u_count == 1) {
    lumping.rates[0] = 1.0;
    return lumping;
  }
  const double bridge = options.bridge_probability;
  if (!(bridge > 0.0) || bridge > 1.0) {
    throw std::invalid_argument("bridge probability must be in (0, 1]");
  }
  const double cross =
      bridge / (static_cast<double>(u_count) * (u_count - 1));
  const double intra = (1.0 - bridge) / static_cast<double>(u_count);
  for (std::size_t u = 0; u < u_count; ++u) {
    for (std::size_t v = 0; v < u_count; ++v) {
      lumping.rates[u * u_count + v] = u == v ? intra : cross;
    }
  }
  return lumping;
}

ClusteredScheduler::ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                                       double bridge_probability)
    : ClusteredScheduler(n, seed,
                         ClusteredOptions{.num_clusters = 2,
                                          .bridge_probability =
                                              bridge_probability}) {
  CIRCLES_CHECK_MSG(n >= 4, "clustered scheduler needs at least four agents");
}

ClusteredScheduler::ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                                       const ClusteredOptions& options)
    : ClusteredScheduler(clustered_lumping(n, options), seed) {}

ClusteredScheduler::ClusteredScheduler(UrnLumping lumping, std::uint64_t seed)
    : lumping_(std::move(lumping)), rng_(seed) {
  lumping_.validate();
  offsets_.reserve(lumping_.num_urns());
  std::uint64_t offset = 0;
  for (const std::uint64_t size : lumping_.sizes) {
    offsets_.push_back(offset);
    offset += size;
  }
  cumulative_rates_.reserve(lumping_.rates.size());
  double acc = 0.0;
  for (const double rate : lumping_.rates) {
    acc += rate;
    cumulative_rates_.push_back(acc);
  }
}

AgentPair ClusteredScheduler::next(const Population&) {
  const std::size_t u_count = lumping_.num_urns();
  std::size_t block = 0;
  if (u_count > 1) {
    const double r = rng_.uniform01();
    while (block + 1 < cumulative_rates_.size() &&
           r >= cumulative_rates_[block]) {
      ++block;
    }
    // A zero-rate block owns no probability interval, so the walk can only
    // land on one when rounding pushed r past the final live block's
    // cumulative sum; fall back to the nearest live block.
    while (lumping_.rates[block] == 0.0 && block > 0) --block;
  }
  const std::size_t u = block / u_count;
  const std::size_t v = block % u_count;
  if (u == v) {
    const auto [a, b] = rng_.distinct_pair(lumping_.sizes[u]);
    return {static_cast<AgentId>(offsets_[u] + a),
            static_cast<AgentId>(offsets_[u] + b)};
  }
  const auto a =
      static_cast<AgentId>(offsets_[u] + rng_.uniform_below(lumping_.sizes[u]));
  const auto b =
      static_cast<AgentId>(offsets_[v] + rng_.uniform_below(lumping_.sizes[v]));
  return {a, b};
}

}  // namespace circles::pp
