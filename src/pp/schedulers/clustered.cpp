#include "pp/schedulers/clustered.hpp"

#include "util/check.hpp"

namespace circles::pp {

ClusteredScheduler::ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                                       double bridge_probability)
    : n_(n),
      half_(n / 2),
      bridge_probability_(bridge_probability),
      rng_(seed) {
  CIRCLES_CHECK_MSG(n >= 4, "clustered scheduler needs at least four agents");
  CIRCLES_CHECK_MSG(bridge_probability > 0.0 && bridge_probability <= 1.0,
                    "bridge probability must be in (0, 1]");
}

AgentPair ClusteredScheduler::next(const Population&) {
  if (rng_.bernoulli(bridge_probability_)) {
    // One agent from each side, random orientation.
    const auto a = static_cast<AgentId>(rng_.uniform_below(half_));
    const auto b =
        static_cast<AgentId>(half_ + rng_.uniform_below(n_ - half_));
    if (rng_.bernoulli(0.5)) return {a, b};
    return {b, a};
  }
  if (rng_.bernoulli(0.5)) {
    const auto [a, b] = rng_.distinct_pair(half_);
    return {static_cast<AgentId>(a), static_cast<AgentId>(b)};
  }
  const auto [a, b] = rng_.distinct_pair(n_ - half_);
  return {static_cast<AgentId>(half_ + a), static_cast<AgentId>(half_ + b)};
}

}  // namespace circles::pp
