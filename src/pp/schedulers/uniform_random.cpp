#include "pp/schedulers/uniform_random.hpp"

#include "util/check.hpp"

namespace circles::pp {

UniformRandomScheduler::UniformRandomScheduler(std::uint32_t n,
                                               std::uint64_t seed)
    : n_(n), rng_(seed) {
  CIRCLES_CHECK_MSG(n >= 2, "scheduler needs at least two agents");
}

AgentPair UniformRandomScheduler::next(const Population&) {
  const auto [a, b] = rng_.distinct_pair(n_);
  return {static_cast<AgentId>(a), static_cast<AgentId>(b)};
}

}  // namespace circles::pp
