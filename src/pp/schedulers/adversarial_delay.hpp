// A weakly fair adversary that delays progress as long as it can.
//
// Strategy: on most steps, schedule a *null* interaction (an ordered pair of
// agents whose states the protocol leaves unchanged) if one exists; every
// `kFairnessStride` steps, and whenever no null pair exists, fall back to a
// round-robin cursor. The round-robin subsequence alone visits every ordered
// pair infinitely often, so the produced schedule is weakly fair no matter
// what the adversarial part does — this is the strongest scheduler in the zoo
// for "always correct" claims (Theorem 3.7) because it starves the protocol
// of productive meetings for as long as the fairness constraint allows.
//
// State-aware, so it needs the protocol; search is O(d^2 + n) per refresh
// with d = distinct present states. Intended for n up to a few hundred.
#pragma once

#include <optional>

#include "pp/scheduler.hpp"

namespace circles::pp {

class AdversarialDelayScheduler final : public Scheduler {
 public:
  /// One in `fairness_stride` steps is forced round-robin.
  AdversarialDelayScheduler(std::uint32_t n, const Protocol& protocol,
                            std::uint32_t fairness_stride = 8);

  AgentPair next(const Population& population) override;
  std::uint64_t fairness_period() const override {
    // Every ordered pair appears within stride * n(n-1) steps.
    return static_cast<std::uint64_t>(fairness_stride_) * n_ * (n_ - 1);
  }
  std::string name() const override { return "adversarial"; }

 private:
  AgentPair round_robin_pair();
  std::optional<AgentPair> find_null_pair(const Population& population) const;

  std::uint32_t n_;
  const Protocol& protocol_;
  std::uint32_t fairness_stride_;
  std::uint64_t step_ = 0;
  std::uint32_t rr_i_ = 0;
  std::uint32_t rr_j_ = 1;
};

}  // namespace circles::pp
