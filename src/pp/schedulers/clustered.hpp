// Two-clique ("dumbbell") interaction pattern: agents are split into two
// clusters; most interactions are intra-cluster, a small fraction crosses the
// bridge. Weakly fair with probability 1 (the bridge probability is positive)
// but information between the halves mixes slowly — a stress test for
// convergence-time experiments.
#pragma once

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::pp {

class ClusteredScheduler final : public Scheduler {
 public:
  ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                     double bridge_probability = 0.01);

  AgentPair next(const Population& population) override;
  std::string name() const override { return "clustered"; }

 private:
  std::uint32_t n_;
  std::uint32_t half_;  // agents [0, half_) form cluster A, the rest cluster B
  double bridge_probability_;
  util::Rng rng_;
};

}  // namespace circles::pp
