// Clustered ("dumbbell" and beyond) interaction pattern: agents are split
// into clusters; most interactions are intra-cluster, a small fraction
// crosses a bridge. Weakly fair with probability 1 whenever every ordered
// cluster pair carries positive rate, but information between clusters mixes
// slowly — a stress test for convergence-time experiments.
//
// The scheduler is exactly urn-lumpable (see pp::UrnLumping): each step
// draws an ordered cluster pair from a fixed rate matrix, then uniform
// agents within the chosen clusters. The dense urn engine simulates exactly
// this chain on per-cluster counts, making this scheduler the agent-side
// oracle for dense::DenseEngine's multi-urn mode.
#pragma once

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::pp {

class ClusteredScheduler final : public Scheduler {
 public:
  /// The historical dumbbell: two (near-)equal halves, cross mass
  /// `bridge_probability` split over both orientations.
  ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                     double bridge_probability = 0.01);

  /// General form: arbitrary cluster count and sizes (options.resolve_sizes)
  /// with the bridge mass spread evenly over the ordered cross blocks.
  ClusteredScheduler(std::uint32_t n, std::uint64_t seed,
                     const ClusteredOptions& options);

  /// Fully explicit rate matrix (must satisfy UrnLumping::validate()).
  ClusteredScheduler(UrnLumping lumping, std::uint64_t seed);

  AgentPair next(const Population& population) override;
  std::optional<UrnLumping> lumping() const override { return lumping_; }
  std::string name() const override { return "clustered"; }

 private:
  UrnLumping lumping_;
  std::vector<std::uint64_t> offsets_;     // cluster u = ids [offsets_[u], offsets_[u] + sizes[u])
  std::vector<double> cumulative_rates_;   // prefix sums over the rate matrix
  util::Rng rng_;
};

/// The rate matrix ClusteredOptions describes: cross mass
/// `bridge_probability` split evenly over the U(U-1) ordered cross blocks,
/// the rest split evenly over the U intra blocks (matching the historical
/// two-cluster scheduler at U = 2). With U = 1 the single intra block gets
/// rate 1 and the bridge probability is ignored.
UrnLumping clustered_lumping(std::uint64_t n, const ClusteredOptions& options);

}  // namespace circles::pp
