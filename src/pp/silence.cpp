#include "pp/silence.hpp"

#include "kernel/compiled_protocol.hpp"

namespace circles::pp {

bool is_silent(const Population& population, const Protocol& protocol) {
  const auto present = population.present_states();
  for (const StateId s : present) {
    for (const StateId t : present) {
      if (s == t && population.count(s) < 2) continue;
      const Transition tr = protocol.transition(s, t);
      if (tr.initiator != s || tr.responder != t) return false;
    }
  }
  return true;
}

bool is_silent(const Population& population,
               const kernel::CompiledProtocol& kernel) {
  const auto present = population.present_states();
  return kernel.config_silent(
      present, [&](StateId s) { return population.count(s); });
}

}  // namespace circles::pp
