// Dense transition caching.
//
// Some protocols pay real work per transition (PairwisePlurality decodes and
// re-encodes O(k^2) game digits on every interaction). For protocols with a
// modest state count, precomputing the full num_states^2 transition table
// turns every interaction into one array load. CachedProtocol wraps any
// protocol transparently; the throughput bench quantifies the gain
// (~7x end-to-end for the pairwise baseline at k = 4, where the engine
// loop is the remaining cost).
#pragma once

#include <memory>
#include <vector>

#include "pp/protocol.hpp"

namespace circles::pp {

class CachedProtocol final : public Protocol {
 public:
  /// Precomputes all transitions. Aborts if num_states()^2 exceeds
  /// `max_entries` (default 2^22 entries = 32 MiB of table) — raise it
  /// explicitly for bigger state spaces if the memory is acceptable.
  explicit CachedProtocol(const Protocol& base,
                          std::uint64_t max_entries = 1ull << 22);

  std::uint64_t num_states() const override { return num_states_; }
  std::uint32_t num_colors() const override { return base_.num_colors(); }
  std::uint32_t num_output_symbols() const override {
    return base_.num_output_symbols();
  }
  StateId input(ColorId color) const override { return base_.input(color); }
  OutputSymbol output(StateId state) const override {
    return base_.output(state);
  }
  Transition transition(StateId initiator, StateId responder) const override {
    return table_[static_cast<std::size_t>(initiator) * num_states_ +
                  responder];
  }
  std::string name() const override { return base_.name() + "_cached"; }
  std::string state_name(StateId state) const override {
    return base_.state_name(state);
  }
  std::string output_name(OutputSymbol symbol) const override {
    return base_.output_name(symbol);
  }

  const Protocol& base() const { return base_; }

 private:
  const Protocol& base_;
  std::uint64_t num_states_;
  std::vector<Transition> table_;
};

}  // namespace circles::pp
