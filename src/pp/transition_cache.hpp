// Dense transition caching — a thin Protocol-shaped shim over the kernel.
//
// Historically this module owned its own num_states^2 table; that table now
// lives in kernel::CompiledProtocol, which every engine consumes directly.
// CachedProtocol remains for call sites that need a *Protocol* (so a cached
// view can flow through any API taking `const Protocol&`), and is simply a
// CompiledProtocol forced to the dense table kind. For new code prefer
// compiling a kernel and handing it to the engines.
#pragma once

#include "kernel/compiled_protocol.hpp"
#include "pp/protocol.hpp"

namespace circles::pp {

class CachedProtocol final : public Protocol {
 public:
  /// Precomputes all transitions. Aborts if num_states()^2 exceeds
  /// `max_entries` (default 2^22 entries = 32 MiB of table) — raise it
  /// explicitly for bigger state spaces if the memory is acceptable.
  explicit CachedProtocol(const Protocol& base,
                          std::uint64_t max_entries = 1ull << 22);

  std::uint64_t num_states() const override { return kernel_.num_states(); }
  std::uint32_t num_colors() const override { return kernel_.num_colors(); }
  std::uint32_t num_output_symbols() const override {
    return kernel_.num_output_symbols();
  }
  StateId input(ColorId color) const override { return kernel_.input(color); }
  OutputSymbol output(StateId state) const override {
    return kernel_.output(state);
  }
  Transition transition(StateId initiator, StateId responder) const override {
    return kernel_.transition(initiator, responder);
  }
  std::string name() const override { return base_.name() + "_cached"; }
  std::string state_name(StateId state) const override {
    return base_.state_name(state);
  }
  std::string output_name(OutputSymbol symbol) const override {
    return base_.output_name(symbol);
  }

  const Protocol& base() const { return base_; }
  const kernel::CompiledProtocol& kernel() const { return kernel_; }

 private:
  const Protocol& base_;
  kernel::CompiledProtocol kernel_;
};

}  // namespace circles::pp
