// Text snapshots of configurations.
//
// Configurations are multisets (agents are anonymous), so a snapshot is the
// per-state count table plus enough metadata to detect mismatched reloads.
// The format is line-oriented and diff-friendly — stable across runs for use
// in golden tests and repro bundles:
//
//   circles-snapshot v1
//   protocol <name>
//   num_states <N>
//   agents <n>
//   <state_id> <count>      # one line per present state, ascending
#pragma once

#include <string>

#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace circles::pp {

std::string serialize_population(const Population& population,
                                 const Protocol& protocol);

/// Parses a snapshot produced by serialize_population. Throws
/// std::invalid_argument on malformed input or a protocol mismatch
/// (different name or state count).
Population parse_population(const std::string& text, const Protocol& protocol);

}  // namespace circles::pp
