#include "pp/protocol.hpp"

namespace circles::pp {

std::string Protocol::state_name(StateId state) const {
  return "s" + std::to_string(state);
}

std::string Protocol::output_name(OutputSymbol symbol) const {
  if (symbol < num_colors()) return "c" + std::to_string(symbol);
  return "sym" + std::to_string(symbol);
}

}  // namespace circles::pp
