#include "pp/trace.hpp"

namespace circles::pp {

void InteractionRecorder::on_interaction(const InteractionEvent& event,
                                         const Population&) {
  if (events_.size() >= max_events_) {
    truncated_ = true;
    return;
  }
  events_.push_back(event);
}

void OutputStabilityMonitor::on_start(const Population&,
                                      const Protocol& protocol) {
  protocol_ = &protocol;
  last_output_change_ = 0;
  total_flips_ = 0;
}

void OutputStabilityMonitor::on_interaction(const InteractionEvent& event,
                                            const Population&) {
  if (!event.changed()) return;
  const bool initiator_flip = protocol_->output(event.initiator_before) !=
                              protocol_->output(event.initiator_after);
  const bool responder_flip = protocol_->output(event.responder_before) !=
                              protocol_->output(event.responder_after);
  if (initiator_flip || responder_flip) {
    last_output_change_ = event.step + 1;
    total_flips_ += initiator_flip ? 1 : 0;
    total_flips_ += responder_flip ? 1 : 0;
  }
}

void StateChangeCounter::on_interaction(const InteractionEvent& event,
                                        const Population&) {
  if (event.changed()) {
    ++changes_;
  } else {
    ++nulls_;
  }
}

}  // namespace circles::pp
