// Interaction graphs and graph-restricted scheduling.
//
// The paper's model lets every pair interact (Definition 1.2 demands it:
// weak fairness quantifies over all pairs). Restricting interactions to the
// edges of a graph leaves that model — none of the paper's proofs apply —
// but it is the natural "what if the sensors have radio range" question, and
// experiment E14 explores it. The schedulers here are *edge-fair*: every
// ordered edge is scheduled infinitely often, and their fairness_period()
// certifies edge-silence ("no schedulable interaction can change state"),
// which is the correct stability notion for a restricted topology.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::pp {

/// An undirected simple graph on agents [0, n); interactions may use each
/// edge in both (initiator, responder) orientations.
struct InteractionGraph {
  std::uint32_t n = 0;
  std::vector<std::pair<AgentId, AgentId>> edges;  // a < b, no duplicates

  static InteractionGraph complete(std::uint32_t n);
  static InteractionGraph ring(std::uint32_t n);
  /// Star with hub 0.
  static InteractionGraph star(std::uint32_t n);
  /// rows x cols 4-neighbour grid (n = rows * cols).
  static InteractionGraph grid(std::uint32_t rows, std::uint32_t cols);
  /// Random d-regular simple graph via the pairing model (retries until
  /// simple). Requires n*d even, d < n.
  static InteractionGraph random_regular(std::uint32_t n, std::uint32_t d,
                                         std::uint64_t seed);

  bool connected() const;
  std::string name;  // optional label for tables
};

enum class GraphSchedulerMode {
  kRoundRobin,     // directed edges in fixed order; period 2|E|
  kShuffledSweep,  // directed edges reshuffled each sweep; period 4|E|-1
};

class GraphScheduler final : public Scheduler {
 public:
  GraphScheduler(InteractionGraph graph, GraphSchedulerMode mode,
                 std::uint64_t seed);

  AgentPair next(const Population& population) override;
  /// A change-free window of this length certifies *edge*-silence.
  std::uint64_t fairness_period() const override;
  std::string name() const override;

  const InteractionGraph& graph() const { return graph_; }

 private:
  InteractionGraph graph_;
  GraphSchedulerMode mode_;
  std::vector<AgentPair> directed_;
  std::size_t cursor_ = 0;
  util::Rng rng_;
};

}  // namespace circles::pp
