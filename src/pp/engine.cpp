#include "pp/engine.hpp"

#include "pp/silence.hpp"
#include "util/check.hpp"

namespace circles::pp {

RunResult Engine::run(const Protocol& protocol, Population& population,
                      Scheduler& scheduler,
                      std::span<Monitor* const> monitors) {
  CIRCLES_CHECK_MSG(population.size() >= 2,
                    "engine requires at least two agents");
  RunResult result;

  for (Monitor* monitor : monitors) monitor->on_start(population, protocol);

  const std::uint64_t period = scheduler.fairness_period();
  std::uint64_t change_free_streak = 0;
  std::uint64_t next_silence_check = options_.initial_silence_streak;

  // An initial configuration can already be silent (e.g. n agents of one
  // color under a protocol whose same-state interactions are null).
  if (options_.stop_when_silent && is_silent(population, protocol)) {
    result.silent = true;
  }

  while (!result.silent && result.interactions < options_.max_interactions) {
    const AgentPair pair = scheduler.next(population);
    CIRCLES_DCHECK(pair.initiator != pair.responder);
    CIRCLES_DCHECK(pair.initiator < population.size());
    CIRCLES_DCHECK(pair.responder < population.size());

    const StateId before_i = population.state(pair.initiator);
    const StateId before_r = population.state(pair.responder);
    const Transition tr = protocol.transition(before_i, before_r);
    const bool changed = tr.initiator != before_i || tr.responder != before_r;

    if (changed) {
      population.set_state(pair.initiator, tr.initiator);
      population.set_state(pair.responder, tr.responder);
    }

    if (!monitors.empty()) {
      const InteractionEvent event{result.interactions, pair.initiator,
                                   pair.responder,     before_i,
                                   before_r,           tr.initiator,
                                   tr.responder};
      for (Monitor* monitor : monitors) {
        monitor->on_interaction(event, population);
      }
    }

    if (changed) {
      result.state_changes += 1;
      result.last_change_step = result.interactions;
      change_free_streak = 0;
      next_silence_check = options_.initial_silence_streak;
    } else {
      change_free_streak += 1;
    }
    result.interactions += 1;

    if (!options_.stop_when_silent) continue;

    if (period > 0) {
      // Deterministic certificate: a change-free full period means every
      // ordered agent pair was tried and none changed.
      if (change_free_streak >= period) result.silent = true;
    } else if (change_free_streak >= next_silence_check) {
      if (is_silent(population, protocol)) {
        result.silent = true;
      } else {
        next_silence_check *= 2;
      }
    }
  }

  if (!result.silent && result.interactions >= options_.max_interactions) {
    result.budget_exhausted = true;
    // The budget may have stopped us in a configuration that happens to be
    // silent; report it exactly.
    result.silent = is_silent(population, protocol);
  }

  result.final_outputs = population.output_histogram(protocol);
  for (Monitor* monitor : monitors) monitor->on_finish(population);
  return result;
}

RunResult run_protocol(const Protocol& protocol,
                       std::span<const ColorId> colors, Scheduler& scheduler,
                       EngineOptions options,
                       std::span<Monitor* const> monitors) {
  Population population(protocol, colors);
  Engine engine(options);
  return engine.run(protocol, population, scheduler, monitors);
}

}  // namespace circles::pp
