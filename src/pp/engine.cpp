#include "pp/engine.hpp"

#include "kernel/compiled_protocol.hpp"
#include "metrics/metrics.hpp"
#include "pp/silence.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace circles::pp {

namespace {

/// The interaction loop, shared by the compiled-kernel and legacy-virtual
/// paths. `Model` supplies the two protocol-dependent operations:
/// transition(a, b) and silent(population); everything else — monitors,
/// streak accounting, silence-check backoff, budgets — is identical, so the
/// two paths produce bitwise-identical RunResults.
template <typename Model>
RunResult run_loop(const EngineOptions& options, const Protocol& protocol,
                   const Model& model, Population& population,
                   Scheduler& scheduler, std::span<Monitor* const> monitors) {
  CIRCLES_CHECK_MSG(population.size() >= 2,
                    "engine requires at least two agents");
  RunResult result;

  // Telemetry accumulates in locals and flushes once at the end; the only
  // per-interaction cost when enabled is the monitor-dispatch timer, and
  // that is skipped entirely when there are no monitors.
  std::uint64_t silence_checks = 0;
  metrics::Timer* monitor_timer =
      monitors.empty() ? nullptr
                       : metrics::timer(options.metrics, "engine.monitor");

  // Spans follow the same rule: the per-interaction loop emits nothing (one
  // run = one span), so tracing costs two clock reads per run and zero when
  // no tracer is attached.
  trace::TraceBuffer* trace_buffer = trace::buffer(options.tracer);
  const trace::ScopedSpan run_span(trace_buffer, "engine.run");

  for (Monitor* monitor : monitors) monitor->on_start(population, protocol);

  const std::uint64_t period = scheduler.fairness_period();
  std::uint64_t change_free_streak = 0;
  std::uint64_t next_silence_check = options.initial_silence_streak;

  // An initial configuration can already be silent (e.g. n agents of one
  // color under a protocol whose same-state interactions are null).
  if (options.stop_when_silent) {
    silence_checks += 1;
    if (model.silent(population)) result.silent = true;
  }

  while (!result.silent && result.interactions < options.max_interactions) {
    const AgentPair pair = scheduler.next(population);
    CIRCLES_DCHECK(pair.initiator != pair.responder);
    CIRCLES_DCHECK(pair.initiator < population.size());
    CIRCLES_DCHECK(pair.responder < population.size());

    const StateId before_i = population.state(pair.initiator);
    const StateId before_r = population.state(pair.responder);
    const Transition tr = model.transition(before_i, before_r);
    const bool changed = tr.initiator != before_i || tr.responder != before_r;

    if (changed) {
      population.set_state(pair.initiator, tr.initiator);
      population.set_state(pair.responder, tr.responder);
    }

    if (!monitors.empty()) {
      metrics::ScopedTimer span(monitor_timer);
      const InteractionEvent event{result.interactions, pair.initiator,
                                   pair.responder,     before_i,
                                   before_r,           tr.initiator,
                                   tr.responder};
      for (Monitor* monitor : monitors) {
        monitor->on_interaction(event, population);
      }
    }

    if (changed) {
      result.state_changes += 1;
      result.last_change_step = result.interactions;
      change_free_streak = 0;
      next_silence_check = options.initial_silence_streak;
    } else {
      change_free_streak += 1;
    }
    result.interactions += 1;

    if (!options.stop_when_silent) continue;

    if (period > 0) {
      // Deterministic certificate: a change-free full period means every
      // ordered agent pair was tried and none changed.
      if (change_free_streak >= period) result.silent = true;
    } else if (change_free_streak >= next_silence_check) {
      silence_checks += 1;
      if (model.silent(population)) {
        result.silent = true;
      } else {
        next_silence_check *= 2;
      }
    }
  }

  if (!result.silent && result.interactions >= options.max_interactions) {
    result.budget_exhausted = true;
    // The budget may have stopped us in a configuration that happens to be
    // silent; report it exactly.
    silence_checks += 1;
    result.silent = model.silent(population);
  }

  result.final_outputs = population.output_histogram(protocol);
  for (Monitor* monitor : monitors) monitor->on_finish(population);

  if (options.metrics != nullptr) {
    auto& m = *options.metrics;
    m.counter("engine.runs").add(1);
    m.counter("engine.interactions").add(result.interactions);
    m.counter("engine.state_changes").add(result.state_changes);
    m.counter("engine.silence_checks").add(silence_checks);
  }
  return result;
}

struct KernelModel {
  const kernel::CompiledProtocol& kernel;
  Transition transition(StateId a, StateId b) const {
    return kernel.transition(a, b);
  }
  bool silent(const Population& population) const {
    return is_silent(population, kernel);
  }
};

struct VirtualModel {
  const Protocol& protocol;
  Transition transition(StateId a, StateId b) const {
    return protocol.transition(a, b);
  }
  bool silent(const Population& population) const {
    return is_silent(population, protocol);
  }
};

}  // namespace

RunResult Engine::run(const kernel::CompiledProtocol& kernel,
                      Population& population, Scheduler& scheduler,
                      std::span<Monitor* const> monitors) {
  return run_loop(options_, kernel.protocol(), KernelModel{kernel}, population,
                  scheduler, monitors);
}

RunResult Engine::run(const Protocol& protocol, Population& population,
                      Scheduler& scheduler,
                      std::span<Monitor* const> monitors) {
  const kernel::CompiledProtocol kernel(protocol,
                                        kernel::CompileOptions::one_shot());
  return run(kernel, population, scheduler, monitors);
}

RunResult Engine::run_virtual(const Protocol& protocol, Population& population,
                              Scheduler& scheduler,
                              std::span<Monitor* const> monitors) {
  return run_loop(options_, protocol, VirtualModel{protocol}, population,
                  scheduler, monitors);
}

RunResult run_protocol(const Protocol& protocol,
                       std::span<const ColorId> colors, Scheduler& scheduler,
                       EngineOptions options,
                       std::span<Monitor* const> monitors) {
  Population population(protocol, colors);
  Engine engine(options);
  return engine.run(protocol, population, scheduler, monitors);
}

}  // namespace circles::pp
