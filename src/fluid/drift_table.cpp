#include "fluid/drift_table.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "kernel/compiled_protocol.hpp"
#include "util/check.hpp"

namespace circles::fluid {

DriftTable::DriftTable(const pp::Protocol& protocol,
                       const kernel::CompiledProtocol* kernel,
                       std::uint64_t max_pair_lookups) {
  CIRCLES_CHECK_MSG(kernel == nullptr || &kernel->protocol() == &protocol,
                    "drift table kernel does not match the protocol");
  const std::uint64_t num_states = protocol.num_states();
  index_.assign(static_cast<std::size_t>(num_states), -1);

  const auto add_state = [&](pp::StateId s) {
    if (index_[s] >= 0) return;
    index_[s] = static_cast<std::int32_t>(species_.size());
    species_.push_back(s);
  };
  for (pp::ColorId c = 0; c < protocol.num_colors(); ++c) {
    add_state(protocol.input(c));
  }

  const auto transition = [&](pp::StateId a, pp::StateId b) {
    return kernel != nullptr ? kernel->transition(a, b)
                             : protocol.transition(a, b);
  };
  const auto budget = [&]() {
    if (++pair_lookups_ <= max_pair_lookups) return;
    throw std::invalid_argument(
        "fluid drift table: the input-state closure of protocol '" +
        protocol.name() + "' exceeds the pair-enumeration budget (" +
        std::to_string(max_pair_lookups) +
        " transition lookups); the state space is too wide for the "
        "mean-field backend — use a dense backend instead");
  };

  // Fixpoint over the closure: each round enumerates exactly the ordered
  // pairs with at least one state discovered since the previous round.
  // States appended mid-round have index >= round_size and are picked up by
  // the next round, so every in-closure pair is visited exactly once.
  const bool adjacency = kernel != nullptr && kernel->has_adjacency();
  std::size_t done = 0;  // pairs over species_[0..done) are processed
  while (done < species_.size()) {
    const std::size_t old_done = done;
    const std::size_t round_size = species_.size();
    done = round_size;
    for (std::size_t i = 0; i < round_size; ++i) {
      const pp::StateId a = species_[i];
      if (adjacency) {
        // CSR adjacency: only non-null responders of `a` are visited; keep
        // the ones already inside this round's closure snapshot.
        for (const pp::StateId b : kernel->active_responders(a)) {
          const std::int32_t j = b < num_states ? index_[b] : -1;
          if (j < 0 || static_cast<std::size_t>(j) >= round_size) continue;
          if (i < old_done && static_cast<std::size_t>(j) < old_done) continue;
          budget();
          const pp::Transition out = transition(a, b);
          add_state(out.initiator);
          add_state(out.responder);
          terms_.push_back({static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(j),
                            static_cast<std::uint32_t>(index_[out.initiator]),
                            static_cast<std::uint32_t>(index_[out.responder])});
        }
        continue;
      }
      const std::size_t j_begin = i < old_done ? old_done : 0;
      for (std::size_t j = j_begin; j < round_size; ++j) {
        budget();
        const pp::StateId b = species_[j];
        const pp::Transition out = transition(a, b);
        if (out.initiator == a && out.responder == b) continue;  // null
        add_state(out.initiator);
        add_state(out.responder);
        terms_.push_back({static_cast<std::uint32_t>(i),
                          static_cast<std::uint32_t>(j),
                          static_cast<std::uint32_t>(index_[out.initiator]),
                          static_cast<std::uint32_t>(index_[out.responder])});
      }
    }
  }

  // Canonicalize: species ascending by StateId, terms sorted by (a, b). The
  // drift evaluation sums terms in list order, so this fixes the
  // floating-point summation order — trajectories are bitwise identical
  // whichever build path (dense table, CSR adjacency, virtual calls)
  // discovered the closure.
  std::vector<std::uint32_t> remap(species_.size());
  std::vector<pp::StateId> sorted = species_;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    remap[static_cast<std::size_t>(index_[sorted[i]])] =
        static_cast<std::uint32_t>(i);
  }
  species_ = std::move(sorted);
  for (std::size_t i = 0; i < species_.size(); ++i) {
    index_[species_[i]] = static_cast<std::int32_t>(i);
  }
  for (DriftTerm& term : terms_) {
    term.a = remap[term.a];
    term.b = remap[term.b];
    term.a2 = remap[term.a2];
    term.b2 = remap[term.b2];
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const DriftTerm& lhs, const DriftTerm& rhs) {
              return lhs.a != rhs.a ? lhs.a < rhs.a : lhs.b < rhs.b;
            });
}

}  // namespace circles::fluid
