// FluidEngine: the mean-field tier of the backend ladder.
//
// The lumped count chain of a population protocol concentrates around its
// mean-field ODE as n grows: with x_s the fraction of agents in state s and
// one interaction per 1/n chemical time, dx/dt = sum over non-null ordered
// pairs (a, b) -> (a', b') of x_a * x_b * (e_a' + e_b' - e_a - e_b). The
// fluctuations around the ODE are O(1/sqrt(n)), so at n = 1e9..1e12 — where
// even the batched dense engine pays ~sqrt(n) work per epoch — integrating
// the ODE reproduces the trajectory statistics to better accuracy than the
// discrete chain's own trial-to-trial noise, at a cost independent of n.
//
// The engine integrates the ODE with an embedded Bogacki–Shampine 3(2)
// Runge–Kutta pair under standard rtol/atol step control. Drift terms come
// from a DriftTable compiled once at construction (kernel IR or virtual
// calls), so any registry protocol runs with zero per-protocol code; the
// multi-urn lumping of the clustered scheduler is the same block structure
// the dense engine uses, one fraction vector per urn. The trajectory is a
// pure function of (configuration, options): deterministic to the bit for a
// fixed spec, independent of the seed.
//
// An optional tau-leaping tier (FluidOptions::tau_leaping) re-introduces
// finite-n fluctuations: it advances the *integer* count chain with
// per-reaction Poisson leaps (Cao-style tau selection), which keeps the
// exact-silence certificate of the dense engines while stepping far beyond
// one interaction at a time. Tau runs consume the seed; ODE runs ignore it.
//
// Convergence/silence detection, ODE path: when the drift infinity-norm
// falls below FluidOptions::drift_tol (default 0.5/n — the drift can no
// longer move half an agent per unit time) AND the fractions rounded to
// integer counts form an exactly silent configuration, the run stops with
// silent = true. A run parked at a mean-field fixed point that is not a
// silent configuration reports budget_exhausted, like a discrete engine
// that never silences. Caveat inherited from the model, not the
// integrator: dynamics the discrete chain resolves by noise — an exact tie,
// or a sub-race between near-tied colors — are fluctuation-free here, so
// they either converge exponentially slowly (expect budget_exhausted) or
// tip over on floating-point rounding; use tau_leaping when that noise is
// the quantity of interest.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "dense/dense_config.hpp"
#include "dense/urn_config.hpp"
#include "fluid/drift_table.hpp"
#include "pp/engine.hpp"
#include "pp/run_result.hpp"
#include "pp/scheduler.hpp"
#include "util/rng.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::obs {
class Recorder;
}

namespace circles::fluid {

struct FluidOptions {
  /// Per-step relative/absolute error tolerances of the adaptive RK
  /// controller, applied to the per-urn state fractions.
  double rtol = 1e-6;
  double atol = 1e-9;

  /// Integrate the integer count chain with Poisson tau-leaps instead of
  /// the deterministic ODE (finite-n fluctuations, exact silence).
  bool tau_leaping = false;
  /// Cao-style tau-selection control: bounds the expected relative change
  /// of any count per leap.
  double tau_epsilon = 0.03;

  /// Drift infinity-norm (fractions per unit chemical time) below which the
  /// ODE path tests the rounded configuration for exact silence. 0 = auto:
  /// 0.5 / n.
  double drift_tol = 0.0;

  /// Hard cap on accepted-plus-rejected integrator steps / tau leaps
  /// (stiffness guard; hitting it reports budget_exhausted).
  std::uint64_t max_steps = 50'000'000;

  /// DriftTable compile budget (transition lookups).
  std::uint64_t max_pair_lookups = 1ull << 26;
};

class FluidEngine {
 public:
  /// Compiles the drift table from virtual transition() calls. `protocol`
  /// must outlive the engine. `lumping` empty = single uniform urn.
  explicit FluidEngine(const pp::Protocol& protocol,
                       pp::EngineOptions engine = {}, FluidOptions options = {},
                       pp::UrnLumping lumping = {});

  /// Compiles the drift table from the kernel IR (dense table or sparse
  /// cache, CSR adjacency when built). Shares kernel ownership.
  explicit FluidEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
                       pp::EngineOptions engine = {}, FluidOptions options = {},
                       pp::UrnLumping lumping = {});

  FluidEngine(const FluidEngine&) = delete;
  FluidEngine& operator=(const FluidEngine&) = delete;

  const pp::Protocol& protocol() const { return *protocol_; }
  const kernel::CompiledProtocol* compiled() const { return kernel_.get(); }
  const pp::EngineOptions& options() const { return engine_; }
  const FluidOptions& fluid_options() const { return options_; }
  const pp::UrnLumping& lumping() const { return lumping_; }
  const DriftTable& drift() const { return drift_; }

  /// Mean-field drift dx/dt in chemical time at per-urn species fractions
  /// `x` (row-major num_urns x num_species over drift().species()).
  /// Exposed for the drift-vs-exact-expectation tests; run() uses the same
  /// evaluation internally.
  void eval_drift(std::span<const double> x, std::span<double> dxdt) const;

  /// Integrates from the configuration, writes the final (rounded) counts
  /// back, reports RunResult in the discrete engines' units (interactions =
  /// chemical time * n). Thread-safe/const like DenseEngine::run. Requires
  /// every state holding mass to lie in the drift table's closure. The
  /// single-configuration overload needs a single-urn lumping; the urn
  /// overload needs the engine's lumping to match the configuration shape.
  pp::RunResult run(dense::DenseConfig& config, std::uint64_t seed,
                    obs::Recorder* recorder = nullptr) const;
  pp::RunResult run(dense::UrnConfig& config, std::uint64_t seed,
                    obs::Recorder* recorder = nullptr) const;

 private:
  /// Drift accumulation shared by both run paths; returns the probability
  /// that one interaction is non-null (the state-change rate is n times it).
  double drift_and_rate(std::span<const double> x,
                        std::span<double> dxdt) const;

  pp::RunResult run_counts(std::vector<std::vector<std::uint64_t>>& urns,
                           std::uint64_t seed, obs::Recorder* recorder) const;
  struct Sim;
  void run_ode(Sim& sim) const;
  void run_tau(Sim& sim, std::uint64_t seed) const;

  void init_blocks();

  const pp::Protocol* protocol_;
  std::shared_ptr<const kernel::CompiledProtocol> kernel_;
  pp::EngineOptions engine_;
  FluidOptions options_;
  pp::UrnLumping lumping_;  // empty = single uniform urn
  DriftTable drift_;

  // Block structure flattened for the drift loops: a single uniform urn is
  // one block of rate 1; a multi-urn lumping carries its own rate matrix.
  // scale_[u] = n / n_u converts per-interaction count deltas into
  // per-chemical-time fraction derivatives for urn u.
  std::size_t num_urns_ = 1;
  std::vector<double> rates_;  // num_urns_^2, row-major
  std::vector<double> scale_;  // per urn
};

/// Deterministic Poisson sample (Knuth inversion below mean 32, matched
/// normal approximation above). Exposed for the tau-leaping moment tests.
std::uint64_t poisson(util::Rng& rng, double mean);

}  // namespace circles::fluid
