// DriftTable: the protocol's interaction stoichiometry, compiled once.
//
// The mean-field ODE of a population protocol needs, for every ordered state
// pair (a, b) with a non-null transition (a, b) -> (a', b'), the reaction
// "remove one a and one b, add one a' and one b'" with rate x_a * x_b. This
// module extracts exactly that list from a protocol — via the compiled
// kernel's dense table / CSR adjacency when one is supplied, via virtual
// transition() calls otherwise — restricted to the closure of the input
// states under transitions. Every reachable run of the protocol starts in
// input states, so the closure is a complete species set, and it is usually
// far smaller than num_states (the circles protocol has k^3 states but only
// the input-reachable slice ever holds mass).
//
// States are remapped onto a compact [0, num_species) indexing so the ODE
// state vector is dense regardless of how sparse the closure is inside the
// StateId range. The species list and the term list are canonically sorted,
// so the table — and every trajectory integrated over it — is identical
// whether it was built from a dense kernel, a sparse kernel or the virtual
// protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pp/protocol.hpp"
#include "pp/types.hpp"

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::fluid {

/// One non-null ordered interaction (a, b) -> (a2, b2) over the compact
/// species indexing: rate x_a * x_b, stoichiometry -e_a - e_b + e_a2 + e_b2
/// (initiator deltas land in the initiator's urn, responder deltas in the
/// responder's).
struct DriftTerm {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t a2 = 0;
  std::uint32_t b2 = 0;

  bool operator==(const DriftTerm&) const = default;
};

class DriftTable {
 public:
  /// Compiles the closure + term list. `kernel`, when non-null, must be
  /// compiled from `protocol`; its table (and adjacency, dense kind) then
  /// replaces virtual transition() calls during the build. Throws
  /// std::invalid_argument when the closure needs more than
  /// `max_pair_lookups` transition lookups (quadratic in the closure size —
  /// the guard that keeps very wide protocols from silently allocating
  /// gigabytes of terms).
  DriftTable(const pp::Protocol& protocol,
             const kernel::CompiledProtocol* kernel,
             std::uint64_t max_pair_lookups);

  /// Closure states, ascending by StateId; compact index i <-> species()[i].
  std::span<const pp::StateId> species() const { return species_; }
  std::size_t num_species() const { return species_.size(); }

  /// Compact index of a state, or -1 when the state is outside the closure
  /// (a configuration holding mass there did not start from input states).
  std::int32_t index_of(pp::StateId state) const { return index_[state]; }

  /// Non-null reactions, sorted by (a, b); there is at most one term per
  /// ordered pair.
  std::span<const DriftTerm> terms() const { return terms_; }

  /// Transition lookups spent compiling (closure enumeration cost).
  std::uint64_t pair_lookups() const { return pair_lookups_; }

 private:
  std::vector<pp::StateId> species_;
  std::vector<std::int32_t> index_;  // sized num_states, -1 outside closure
  std::vector<DriftTerm> terms_;
  std::uint64_t pair_lookups_ = 0;
};

}  // namespace circles::fluid
