#include "fluid/fluid_engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "kernel/compiled_protocol.hpp"
#include "metrics/metrics.hpp"
#include "obs/probe.hpp"
#include "obs/recorder.hpp"
#include "trace/trace.hpp"
#include "util/check.hpp"

namespace circles::fluid {

namespace {

double inf_norm(std::span<const double> v) {
  double norm = 0.0;
  for (const double value : v) norm = std::max(norm, std::fabs(value));
  return norm;
}

/// Span decimation for the integrator loops (same policy as the dense
/// engine): full instants for the first kTraceFullSteps accepted steps /
/// leaps, then one per kTraceStride. Rejections and redraws are rare enough
/// to emit unconditionally.
constexpr std::uint64_t kTraceFullSteps = 512;
constexpr std::uint64_t kTraceStride = 256;

}  // namespace

std::uint64_t poisson(util::Rng& rng, double mean) {
  if (!(mean > 0.0)) return 0;
  if (mean < 32.0) {
    // Knuth inversion: multiply uniforms until the product drops under
    // exp(-mean). Expected draws = mean + 1, bounded by the branch above.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= rng.uniform01();
    } while (p > limit);
    return k - 1;
  }
  // Matched-moment normal approximation with continuity correction; the
  // relative error is O(1/sqrt(mean)), below tau-leaping's own bias at the
  // means where this branch runs.
  double u1 = rng.uniform01();
  const double u2 = rng.uniform01();
  if (u1 < 1e-300) u1 = 1e-300;
  const double z = std::sqrt(-2.0 * std::log(u1)) *
                   std::cos(6.283185307179586476925286766559 * u2);
  const double v = std::floor(mean + std::sqrt(mean) * z + 0.5);
  return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
}

FluidEngine::FluidEngine(const pp::Protocol& protocol, pp::EngineOptions engine,
                         FluidOptions options, pp::UrnLumping lumping)
    : protocol_(&protocol),
      kernel_(nullptr),
      engine_(engine),
      options_(options),
      lumping_(std::move(lumping)),
      drift_(protocol, nullptr, options.max_pair_lookups) {
  init_blocks();
}

FluidEngine::FluidEngine(std::shared_ptr<const kernel::CompiledProtocol> kernel,
                         pp::EngineOptions engine, FluidOptions options,
                         pp::UrnLumping lumping)
    : protocol_(&kernel->protocol()),
      kernel_(std::move(kernel)),
      engine_(engine),
      options_(options),
      lumping_(std::move(lumping)),
      drift_(*protocol_, kernel_.get(), options.max_pair_lookups) {
  init_blocks();
}

void FluidEngine::init_blocks() {
  if (lumping_.sizes.empty()) {
    num_urns_ = 1;
    rates_ = {1.0};
    scale_ = {1.0};
    return;
  }
  lumping_.validate();
  num_urns_ = lumping_.num_urns();
  rates_ = lumping_.rates;
  scale_.resize(num_urns_);
  const double n = static_cast<double>(lumping_.n());
  for (std::size_t u = 0; u < num_urns_; ++u) {
    scale_[u] = n / static_cast<double>(lumping_.sizes[u]);
  }
}

double FluidEngine::drift_and_rate(std::span<const double> x,
                                   std::span<double> dxdt) const {
  const std::size_t m = drift_.num_species();
  const std::size_t U = num_urns_;
  CIRCLES_CHECK_MSG(x.size() == U * m && dxdt.size() == U * m,
                    "fluid drift: vector shape must be num_urns x "
                    "num_species");
  std::fill(dxdt.begin(), dxdt.end(), 0.0);
  double weight = 0.0;  // probability one interaction is non-null
  const std::span<const DriftTerm> terms = drift_.terms();
  for (std::size_t u = 0; u < U; ++u) {
    for (std::size_t v = 0; v < U; ++v) {
      const double r = rates_[u * U + v];
      if (r <= 0.0) continue;
      const double* xu = x.data() + u * m;
      const double* xv = x.data() + v * m;
      double* du = dxdt.data() + u * m;
      double* dv = dxdt.data() + v * m;
      for (const DriftTerm& term : terms) {
        const double w = r * xu[term.a] * xv[term.b];
        if (w == 0.0) continue;
        weight += w;
        du[term.a] -= w;
        dv[term.b] -= w;
        du[term.a2] += w;
        dv[term.b2] += w;
      }
    }
  }
  // dxdt currently holds expected count deltas per interaction; interactions
  // arrive at rate n per unit chemical time, and urn u's fractions divide by
  // its own size: d x^u / dt = (n / n_u) * dc_u.
  for (std::size_t u = 0; u < U; ++u) {
    double* du = dxdt.data() + u * m;
    for (std::size_t s = 0; s < m; ++s) du[s] *= scale_[u];
  }
  return weight;
}

void FluidEngine::eval_drift(std::span<const double> x,
                             std::span<double> dxdt) const {
  (void)drift_and_rate(x, dxdt);
}

/// Integration state shared by the ODE and tau paths.
struct FluidEngine::Sim {
  std::size_t U = 1;
  std::size_t m = 0;
  double n = 0.0;                   // total population
  std::vector<double> urn_n;        // per-urn sizes
  std::vector<std::uint64_t> sizes; // same, integer (ProbeContext::urn_sizes)

  std::vector<double> x;        // fractions, U x m (ODE path)
  std::vector<std::uint64_t> c; // counts, U x m (projection / tau path)

  double t = 0.0;
  double horizon = 0.0;
  double drift_tol = 0.0;
  double changes = 0.0;  // expected (ODE) / exact (tau) state changes
  bool silent = false;
  bool budget = false;

  obs::Recorder* recorder = nullptr;
  trace::TraceBuffer* trace = nullptr;  // run thread's span buffer (or null)
  std::vector<std::uint64_t> aggregate;               // full num_states
  std::vector<std::vector<std::uint64_t>> full_urns;  // U > 1 only
  std::vector<std::span<const std::uint64_t>> urn_spans;

  // Telemetry scratch, flushed into EngineOptions::metrics by run_counts.
  std::uint64_t m_ode_accepted = 0;  // BS3(2) steps accepted
  std::uint64_t m_ode_rejected = 0;  // steps whose error estimate failed
  std::uint64_t m_tau_leaps = 0;     // tau leaps applied
  std::uint64_t m_tau_redraws = 0;   // negative-count rejections (tau halved)

  std::uint64_t interactions_at(double time, std::uint64_t cap) const {
    const double v = std::min(time, horizon) * n;
    if (v >= static_cast<double>(cap)) return cap;
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
  }

  /// Rounds fractions to integer counts, preserving each urn's total.
  void round_counts(std::span<const DriftTerm>) {
    for (std::size_t u = 0; u < U; ++u) {
      const double nu = urn_n[u];
      std::uint64_t sum = 0;
      std::size_t argmax = 0;
      for (std::size_t i = 0; i < m; ++i) {
        const double v = x[u * m + i] * nu;
        const std::uint64_t count =
            v <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
        c[u * m + i] = count;
        sum += count;
        if (count > c[u * m + argmax]) argmax = i;
      }
      const std::int64_t diff = static_cast<std::int64_t>(sizes[u]) -
                                static_cast<std::int64_t>(sum);
      const std::int64_t adjusted =
          static_cast<std::int64_t>(c[u * m + argmax]) + diff;
      c[u * m + argmax] =
          adjusted > 0 ? static_cast<std::uint64_t>(adjusted) : 0;
    }
  }

  /// Publishes compact counts into the full-StateId arrays the probe
  /// pipeline reads. Only closure entries are ever nonzero, so no re-zeroing
  /// of the (possibly much larger) full vectors is needed.
  void publish_counts(std::span<const pp::StateId> species) {
    for (std::size_t i = 0; i < m; ++i) aggregate[species[i]] = 0;
    for (std::size_t u = 0; u < U; ++u) {
      for (std::size_t i = 0; i < m; ++i) {
        aggregate[species[i]] += c[u * m + i];
        if (!full_urns.empty()) full_urns[u][species[i]] = c[u * m + i];
      }
    }
  }
};

namespace {

/// Exact silence of integer compact counts: no positive-rate block holds an
/// ordered pair with a non-null transition.
bool counts_silent(const std::vector<std::uint64_t>& c, std::size_t U,
                   std::size_t m, const std::vector<double>& rates,
                   std::span<const DriftTerm> terms) {
  for (std::size_t u = 0; u < U; ++u) {
    for (std::size_t v = 0; v < U; ++v) {
      if (rates[u * U + v] <= 0.0) continue;
      for (const DriftTerm& term : terms) {
        const std::uint64_t ca = c[u * m + term.a];
        if (ca == 0) continue;
        const std::uint64_t cb = c[v * m + term.b];
        if (cb == 0) continue;
        if (u == v && term.a == term.b && ca < 2) continue;
        return false;
      }
    }
  }
  return true;
}

}  // namespace

void FluidEngine::run_ode(Sim& sim) const {
  const std::size_t dim = sim.U * sim.m;
  std::vector<double> k1(dim), k2(dim), k3(dim), k4(dim), xtmp(dim), xn(dim);
  double w1 = drift_and_rate(sim.x, k1);
  // Initial step: small relative to the drift scale; the controller settles
  // within a few steps either way.
  double h = std::min(sim.horizon, 0.25 / (1.0 + inf_norm(k1)));
  std::uint64_t steps = 0;

  while (sim.t < sim.horizon) {
    if (++steps > options_.max_steps) {
      sim.budget = true;
      return;
    }
    const double step = std::min(h, sim.horizon - sim.t);

    // Bogacki–Shampine 3(2), FSAL: k1 is f at the current point.
    for (std::size_t i = 0; i < dim; ++i) {
      xtmp[i] = sim.x[i] + step * 0.5 * k1[i];
    }
    (void)drift_and_rate(xtmp, k2);
    for (std::size_t i = 0; i < dim; ++i) {
      xtmp[i] = sim.x[i] + step * 0.75 * k2[i];
    }
    (void)drift_and_rate(xtmp, k3);
    for (std::size_t i = 0; i < dim; ++i) {
      const double v = sim.x[i] + step * (2.0 / 9.0 * k1[i] +
                                          1.0 / 3.0 * k2[i] +
                                          4.0 / 9.0 * k3[i]);
      // Fractions: clamp the tiny negative excursions of decaying species
      // before they feed back into quadratic rates.
      xn[i] = v > 0.0 ? v : 0.0;
    }
    const double w4 = drift_and_rate(xn, k4);

    double err2 = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double e = step * (-5.0 / 72.0 * k1[i] + 1.0 / 12.0 * k2[i] +
                               1.0 / 9.0 * k3[i] - 1.0 / 8.0 * k4[i]);
      const double scale =
          options_.atol +
          options_.rtol * std::max(std::fabs(sim.x[i]), std::fabs(xn[i]));
      const double q = e / scale;
      err2 += q * q;
    }
    const double errnorm = std::sqrt(err2 / static_cast<double>(dim));

    if (errnorm <= 1.0) {
      sim.m_ode_accepted += 1;
      if (sim.trace != nullptr && (sim.m_ode_accepted <= kTraceFullSteps ||
                                   sim.m_ode_accepted % kTraceStride == 0)) {
        sim.trace->instant("fluid.ode_accepted", "step", sim.m_ode_accepted);
      }
      // Accept. State changes accrue at rate n * P(non-null interaction);
      // trapezoid over the step using the already-evaluated endpoints.
      sim.changes += step * sim.n * 0.5 * (w1 + w4);
      sim.x.swap(xn);
      k1.swap(k4);
      w1 = w4;
      sim.t += step;

      bool projected = false;
      if (sim.recorder != nullptr) {
        sim.round_counts(drift_.terms());
        sim.publish_counts(drift_.species());
        projected = true;
        sim.recorder->advance(
            sim.interactions_at(sim.t, engine_.max_interactions), sim.t,
            sim.aggregate, obs::kUnknownActive, drift_.species(),
            sim.urn_spans);
      }
      if (engine_.stop_when_silent && inf_norm(k1) < sim.drift_tol) {
        if (!projected) sim.round_counts(drift_.terms());
        if (counts_silent(sim.c, sim.U, sim.m, rates_, drift_.terms())) {
          sim.silent = true;
          return;
        }
      }
    } else {
      sim.m_ode_rejected += 1;
      if (sim.trace != nullptr) {
        sim.trace->instant("fluid.ode_rejected", "step", sim.m_ode_rejected);
      }
    }

    const double factor =
        errnorm > 0.0 ? 0.9 * std::pow(errnorm, -1.0 / 3.0) : 5.0;
    h = step * std::clamp(factor, 0.2, 5.0);
    if (!(h > sim.horizon * 1e-14)) {
      // The controller collapsed the step (stiff corner of the tolerance
      // settings): report an exhausted budget rather than spinning.
      sim.budget = true;
      return;
    }
  }
}

void FluidEngine::run_tau(Sim& sim, std::uint64_t seed) const {
  util::Rng rng(seed);
  const std::size_t dim = sim.U * sim.m;
  const std::span<const DriftTerm> terms = drift_.terms();
  std::vector<double> mu(dim), var(dim);
  std::vector<std::int64_t> delta(dim);
  std::uint64_t steps = 0;

  // Visits every (positive-rate block, term) reaction in a fixed order —
  // the order the RNG stream is consumed in, hence part of the determinism
  // contract.
  const auto for_each_reaction = [&](auto&& body) {
    for (std::size_t u = 0; u < sim.U; ++u) {
      for (std::size_t v = 0; v < sim.U; ++v) {
        const double r = rates_[u * sim.U + v];
        if (r <= 0.0) continue;
        const double cap =
            u == v ? sim.urn_n[u] * (sim.urn_n[u] - 1.0)
                   : sim.urn_n[u] * sim.urn_n[v];
        const double base = sim.n * r / cap;
        for (const DriftTerm& term : terms) {
          const double ca = static_cast<double>(sim.c[u * sim.m + term.a]);
          const double cb = static_cast<double>(sim.c[v * sim.m + term.b]);
          const double pairs =
              u == v && term.a == term.b ? ca * (ca - 1.0) : ca * cb;
          if (pairs <= 0.0) continue;
          body(u, v, term, base * pairs);
        }
      }
    }
  };

  while (sim.t < sim.horizon) {
    if (++steps > options_.max_steps) {
      sim.budget = true;
      return;
    }

    double total = 0.0;
    std::fill(mu.begin(), mu.end(), 0.0);
    std::fill(var.begin(), var.end(), 0.0);
    for_each_reaction([&](std::size_t u, std::size_t v, const DriftTerm& term,
                          double lam) {
      total += lam;
      if (term.a2 != term.a) {
        mu[u * sim.m + term.a] -= lam;
        mu[u * sim.m + term.a2] += lam;
        var[u * sim.m + term.a] += lam;
        var[u * sim.m + term.a2] += lam;
      }
      if (term.b2 != term.b) {
        mu[v * sim.m + term.b] -= lam;
        mu[v * sim.m + term.b2] += lam;
        var[v * sim.m + term.b] += lam;
        var[v * sim.m + term.b2] += lam;
      }
    });
    if (total <= 0.0) {
      // No reaction can fire: the exact silence certificate of the discrete
      // chain, same meaning as the dense engines'.
      sim.silent = true;
      return;
    }

    // Cao et al. tau selection: bound each count's expected relative change
    // and relative variance per leap by tau_epsilon.
    const double eps = options_.tau_epsilon;
    double tau = sim.horizon - sim.t;
    for (std::size_t i = 0; i < dim; ++i) {
      if (var[i] <= 0.0) continue;
      const double cbar = std::max(static_cast<double>(sim.c[i]), 1.0);
      if (mu[i] != 0.0) tau = std::min(tau, eps * cbar / std::fabs(mu[i]));
      tau = std::min(tau, eps * eps * cbar * cbar / var[i]);
    }
    // Near silence the propensities are tiny; keep at least ~one expected
    // event per leap so the loop terminates in O(events), not O(horizon/tau).
    if (tau * total < 1.0) tau = std::min(sim.horizon - sim.t, 1.0 / total);

    bool applied = false;
    for (int attempt = 0; attempt < 40 && !applied; ++attempt) {
      std::fill(delta.begin(), delta.end(), 0);
      std::uint64_t events = 0;
      for_each_reaction([&](std::size_t u, std::size_t v,
                            const DriftTerm& term, double lam) {
        const std::uint64_t k = poisson(rng, lam * tau);
        if (k == 0) return;
        events += k;
        const auto sk = static_cast<std::int64_t>(k);
        if (term.a2 != term.a) {
          delta[u * sim.m + term.a] -= sk;
          delta[u * sim.m + term.a2] += sk;
        }
        if (term.b2 != term.b) {
          delta[v * sim.m + term.b] -= sk;
          delta[v * sim.m + term.b2] += sk;
        }
      });
      bool feasible = true;
      for (std::size_t i = 0; i < dim && feasible; ++i) {
        feasible = delta[i] >= 0 ||
                   sim.c[i] >= static_cast<std::uint64_t>(-delta[i]);
      }
      if (!feasible) {
        // Standard negative-count rejection: halve the leap and redraw.
        sim.m_tau_redraws += 1;
        if (sim.trace != nullptr) {
          sim.trace->instant("fluid.tau_redraw", "redraw", sim.m_tau_redraws);
        }
        tau *= 0.5;
        continue;
      }
      for (std::size_t i = 0; i < dim; ++i) {
        sim.c[i] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(sim.c[i]) + delta[i]);
      }
      sim.changes += static_cast<double>(events);
      sim.t += tau;
      sim.m_tau_leaps += 1;
      if (sim.trace != nullptr && (sim.m_tau_leaps <= kTraceFullSteps ||
                                   sim.m_tau_leaps % kTraceStride == 0)) {
        sim.trace->instant("fluid.tau_leap", "events", events);
      }
      applied = true;
    }
    if (!applied) {
      sim.budget = true;
      return;
    }

    if (sim.recorder != nullptr) {
      sim.publish_counts(drift_.species());
      sim.recorder->advance(
          sim.interactions_at(sim.t, engine_.max_interactions), sim.t,
          sim.aggregate, obs::kUnknownActive, drift_.species(), sim.urn_spans);
    }
  }
}

pp::RunResult FluidEngine::run_counts(
    std::vector<std::vector<std::uint64_t>>& urns, std::uint64_t seed,
    obs::Recorder* recorder) const {
  const std::size_t num_states =
      static_cast<std::size_t>(protocol_->num_states());
  CIRCLES_CHECK_MSG(urns.size() == num_urns_,
                    "fluid engine: configuration urn count does not match "
                    "the engine's lumping");

  Sim sim;
  sim.U = urns.size();
  sim.m = drift_.num_species();
  sim.recorder = recorder;
  sim.urn_n.resize(sim.U);
  sim.sizes.resize(sim.U);
  sim.c.assign(sim.U * sim.m, 0);
  std::uint64_t n = 0;
  for (std::size_t u = 0; u < sim.U; ++u) {
    CIRCLES_CHECK_MSG(urns[u].size() == num_states,
                      "fluid engine: count vector size does not match the "
                      "protocol's state count");
    std::uint64_t urn_total = 0;
    for (std::size_t s = 0; s < num_states; ++s) {
      const std::uint64_t count = urns[u][s];
      if (count == 0) continue;
      urn_total += count;
      const std::int32_t idx = drift_.index_of(static_cast<pp::StateId>(s));
      if (idx < 0) {
        throw std::invalid_argument(
            "fluid engine: state '" +
            protocol_->state_name(static_cast<pp::StateId>(s)) +
            "' holds agents but is outside the protocol's input-state "
            "closure; the mean-field drift table only covers configurations "
            "reachable from inputs");
      }
      sim.c[u * sim.m + static_cast<std::size_t>(idx)] = count;
    }
    CIRCLES_CHECK_MSG(lumping_.sizes.empty() ||
                          urn_total == lumping_.sizes[u],
                      "fluid engine: urn size does not match the lumping");
    sim.urn_n[u] = static_cast<double>(urn_total);
    sim.sizes[u] = urn_total;
    n += urn_total;
  }
  CIRCLES_CHECK_MSG(n >= 2, "fluid runs need at least two agents");
  sim.n = static_cast<double>(n);
  // One span per run; accepted/rejected steps, leaps and redraws nest as
  // (decimated) instants. Null tracer: every site is a pointer test.
  sim.trace = trace::buffer(engine_.tracer);
  const trace::ScopedSpan run_span(
      sim.trace, options_.tau_leaping ? "fluid.run_tau" : "fluid.run_ode",
      "n", n);
  sim.horizon = static_cast<double>(engine_.max_interactions) / sim.n;
  sim.drift_tol =
      options_.drift_tol > 0.0 ? options_.drift_tol : 0.5 / sim.n;

  sim.aggregate.assign(num_states, 0);
  if (sim.U > 1) {
    sim.full_urns.assign(sim.U, std::vector<std::uint64_t>(num_states, 0));
    sim.urn_spans.reserve(sim.U);
    for (const auto& full : sim.full_urns) sim.urn_spans.emplace_back(full);
  }
  sim.publish_counts(drift_.species());

  if (recorder != nullptr) {
    obs::ProbeContext ctx;
    ctx.protocol = protocol_;
    ctx.kernel = kernel_.get();
    ctx.n = n;
    if (sim.U > 1) ctx.urn_sizes = sim.sizes;
    recorder->begin(ctx, sim.aggregate, obs::kUnknownActive, drift_.species(),
                    sim.urn_spans);
  }

  if (options_.tau_leaping) {
    run_tau(sim, seed);
  } else {
    sim.x.assign(sim.U * sim.m, 0.0);
    for (std::size_t u = 0; u < sim.U; ++u) {
      for (std::size_t i = 0; i < sim.m; ++i) {
        sim.x[u * sim.m + i] =
            static_cast<double>(sim.c[u * sim.m + i]) / sim.urn_n[u];
      }
    }
    run_ode(sim);
    sim.round_counts(drift_.terms());
  }
  sim.publish_counts(drift_.species());

  // The final silence verdict always comes from the final configuration
  // (the tau path's zero-propensity exit and the ODE path's converged
  // rounding both satisfy it; runs under stop_when_silent=false get graded
  // here too).
  sim.silent = counts_silent(sim.c, sim.U, sim.m, rates_, drift_.terms());

  // Write the final configuration back.
  for (std::size_t u = 0; u < sim.U; ++u) {
    std::fill(urns[u].begin(), urns[u].end(), 0);
    const std::span<const pp::StateId> species = drift_.species();
    for (std::size_t i = 0; i < sim.m; ++i) {
      urns[u][species[i]] = sim.c[u * sim.m + i];
    }
  }

  pp::RunResult result;
  result.interactions = sim.interactions_at(sim.t, engine_.max_interactions);
  const double changes = std::max(0.0, sim.changes);
  result.state_changes =
      changes >= static_cast<double>(result.interactions)
          ? result.interactions
          : static_cast<std::uint64_t>(std::llround(changes));
  result.last_change_step = result.state_changes > 0 ? result.interactions : 0;
  result.silent = sim.silent;
  result.budget_exhausted =
      !sim.silent && (sim.budget || sim.t >= sim.horizon);
  dense::DenseConfig final_config;
  final_config.counts = sim.aggregate;
  result.final_outputs = final_config.output_histogram(*protocol_);

  if (recorder != nullptr) {
    recorder->finish(result.interactions, sim.t, sim.aggregate,
                     obs::kUnknownActive, drift_.species(), sim.urn_spans);
  }

  if (engine_.metrics != nullptr) {
    auto& m = *engine_.metrics;
    m.counter("fluid.runs").add(1);
    m.counter("fluid.ode_steps_accepted").add(sim.m_ode_accepted);
    m.counter("fluid.ode_steps_rejected").add(sim.m_ode_rejected);
    m.counter("fluid.tau_leaps").add(sim.m_tau_leaps);
    m.counter("fluid.tau_redraws").add(sim.m_tau_redraws);
  }
  return result;
}

pp::RunResult FluidEngine::run(dense::DenseConfig& config, std::uint64_t seed,
                               obs::Recorder* recorder) const {
  CIRCLES_CHECK_MSG(num_urns_ == 1,
                    "fluid engine built with a multi-urn lumping runs "
                    "UrnConfigs, not single count vectors");
  std::vector<std::vector<std::uint64_t>> urns;
  urns.push_back(std::move(config.counts));
  const pp::RunResult result = run_counts(urns, seed, recorder);
  config.counts = std::move(urns[0]);
  return result;
}

pp::RunResult FluidEngine::run(dense::UrnConfig& config, std::uint64_t seed,
                               obs::Recorder* recorder) const {
  return run_counts(config.urns, seed, recorder);
}

}  // namespace circles::fluid
