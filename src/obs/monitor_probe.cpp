#include "obs/monitor_probe.hpp"

#include "pp/population.hpp"
#include "pp/protocol.hpp"

namespace circles::obs {

void RecorderMonitor::on_start(const pp::Population& population,
                               const pp::Protocol& protocol) {
  if (begun_) {
    // Engine re-entry within one trial (fault bursts): keep counting from
    // where the previous segment stopped.
    base_steps_ = last_abs_step_;
    return;
  }
  begun_ = true;
  ProbeContext ctx;
  ctx.protocol = &protocol;
  ctx.kernel = kernel_;
  ctx.n = population.size();
  recorder_->begin(ctx, population.counts());
}

void RecorderMonitor::on_interaction(const pp::InteractionEvent& event,
                                     const pp::Population& population) {
  const std::uint64_t step = base_steps_ + event.step + 1;
  last_abs_step_ = step;
  recorder_->advance(step, now(), population.counts());
}

void RecorderMonitor::on_finish(const pp::Population& population) {
  recorder_->finish(last_abs_step_, now(), population.counts());
}

}  // namespace circles::obs
