#include "obs/grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/cli.hpp"

namespace circles::obs {

namespace {

using util::split_commas;

/// Shortest rendering that parses back to the exact double: "0.1" stays
/// "0.1", but code-built fractions like 1.0/3.0 get the full 17 digits —
/// to_string() -> parse() recovering the bit-identical sample point is a
/// documented invariant, and plain %g would silently move it.
std::string format_fraction(double f) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%g", f);
  if (std::strtod(buffer, nullptr) == f) return buffer;
  std::snprintf(buffer, sizeof(buffer), "%.17g", f);
  return buffer;
}

}  // namespace

std::string GridSpec::to_string() const {
  if (!fractions.empty()) {
    std::string out = "frac:";
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      if (i) out += ',';
      out += format_fraction(fractions[i]);
    }
    return out;
  }
  const std::string head = spacing == Spacing::kLinear ? "linear" : "log";
  return head + ":" + std::to_string(points);
}

GridSpec GridSpec::parse(const std::string& text) {
  GridSpec spec;
  const auto colon = text.find(':');
  const std::string head = text.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? std::string() : text.substr(colon + 1);
  try {
    if (head == "linear" || head == "log") {
      spec.spacing = head == "linear" ? Spacing::kLinear : Spacing::kLog;
      if (!arg.empty()) {
        // Full-consumption check: stoll would silently accept "1,024" as 1.
        std::size_t used = 0;
        const long long points = std::stoll(arg, &used);
        if (used != arg.size() || points < 1) {
          throw std::invalid_argument("grid needs an integer >= 1");
        }
        spec.points = static_cast<std::uint32_t>(points);
      }
      return spec;
    }
    if (head == "frac" && !arg.empty()) {
      for (const auto& part : split_commas(arg)) {
        std::size_t used = 0;
        const double f = std::stod(part, &used);
        if (used != part.size() || !(f > 0.0) || f > 1.0) {
          throw std::invalid_argument("fractions must lie in (0, 1]");
        }
        spec.fractions.push_back(f);
      }
      std::sort(spec.fractions.begin(), spec.fractions.end());
      return spec;
    }
  } catch (const std::invalid_argument&) {
    // unified error below (also catches the explicit throws above, which is
    // fine: the message names the full grammar)
  } catch (const std::out_of_range&) {
  }
  throw std::invalid_argument(
      "unknown sample grid '" + text +
      "' (expected linear:<points>, log:<points>, or frac:<f0,f1,...> with "
      "fractions in (0, 1])");
}

std::vector<std::uint64_t> interaction_grid(const GridSpec& spec,
                                            std::uint64_t horizon) {
  std::vector<std::uint64_t> grid;
  if (horizon == 0) return grid;

  const auto push = [&grid, horizon](double value) {
    const std::uint64_t v = std::clamp<std::uint64_t>(
        static_cast<std::uint64_t>(std::llround(value)), 1, horizon);
    if (grid.empty() || v > grid.back()) grid.push_back(v);
  };

  if (!spec.fractions.empty()) {
    // Already sorted ascending by parse(); sort defensively for specs built
    // in code.
    std::vector<double> fractions = spec.fractions;
    std::sort(fractions.begin(), fractions.end());
    for (const double f : fractions) {
      push(f * static_cast<double>(horizon));
    }
    return grid;
  }

  const std::uint64_t points = std::max<std::uint32_t>(spec.points, 1);
  if (spec.spacing == GridSpec::Spacing::kLinear) {
    for (std::uint64_t i = 1; i <= points; ++i) {
      push(static_cast<double>(horizon) * static_cast<double>(i) /
           static_cast<double>(points));
    }
  } else {
    const double log_h = std::log(static_cast<double>(horizon));
    for (std::uint64_t i = 1; i <= points; ++i) {
      push(std::exp(log_h * static_cast<double>(i) /
                    static_cast<double>(points)));
    }
  }
  // Both spacings are monotone and end exactly at the horizon; rounding can
  // only merge neighbours, which `push` already dropped.
  return grid;
}

std::vector<double> chemical_grid(const GridSpec& spec, double horizon) {
  std::vector<double> grid;
  if (!(horizon > 0.0)) return grid;

  const auto push = [&grid, horizon](double value) {
    const double v = std::min(value, horizon);
    if (v > 0.0 && (grid.empty() || v > grid.back())) grid.push_back(v);
  };

  if (!spec.fractions.empty()) {
    std::vector<double> fractions = spec.fractions;
    std::sort(fractions.begin(), fractions.end());
    for (const double f : fractions) push(f * horizon);
    return grid;
  }

  const std::uint64_t points = std::max<std::uint32_t>(spec.points, 1);
  if (spec.spacing == GridSpec::Spacing::kLinear) {
    for (std::uint64_t i = 1; i <= points; ++i) {
      push(horizon * static_cast<double>(i) / static_cast<double>(points));
    }
  } else {
    const double lo = std::log(horizon * 1e-6);
    const double hi = std::log(horizon);
    for (std::uint64_t i = 1; i <= points; ++i) {
      push(std::exp(lo + (hi - lo) * static_cast<double>(i) /
                             static_cast<double>(points)));
    }
  }
  return grid;
}

std::vector<double> envelope_grid(GridSpec::Spacing spacing,
                                  std::size_t points, double x_max) {
  std::vector<double> grid{0.0};
  if (!(x_max > 0.0) || points == 0) return grid;
  if (spacing == GridSpec::Spacing::kLinear) {
    for (std::size_t i = 1; i <= points; ++i) {
      grid.push_back(x_max * static_cast<double>(i) /
                     static_cast<double>(points));
    }
    return grid;
  }
  // Log spacing: geometric from min(1, x_max) up to x_max. Interaction axes
  // start at the first interaction; sub-1 chemical horizons collapse to the
  // endpoint.
  const double lo = std::log(std::min(1.0, x_max));
  const double hi = std::log(x_max);
  for (std::size_t i = 1; i <= points; ++i) {
    const double v =
        std::exp(lo + (hi - lo) * static_cast<double>(i) /
                          static_cast<double>(points));
    if (v > grid.back()) grid.push_back(v);
  }
  return grid;
}

}  // namespace circles::obs
