// Bridges between the event world (pp::Monitor) and the count world (obs).
//
//  * RecorderMonitor — drives a Recorder from the agent-array engine.
//    pp::Population already maintains the per-state count vector, so the
//    monitor only forwards snapshots at the recorder's cadence; between due
//    points an interaction costs one comparison. Survives engine re-entry
//    (fault-injection bursts) by offsetting the per-run step counter.
//
//  * MonitorProbeAdapter — runs an existing pp::Monitor unchanged inside
//    the probe pipeline on the agent backend: hosts that have interaction
//    events attach as_monitor() next to the RecorderMonitor, so bra-ket
//    invariant checkers and potential-descent checkers keep working without
//    a rewrite. Count-only backends cannot drive it; the BatchRunner's
//    validation points monitor-based features here.
#pragma once

#include <cstdint>
#include <functional>

#include "obs/recorder.hpp"
#include "pp/monitor.hpp"

namespace circles::obs {

class RecorderMonitor final : public pp::Monitor {
 public:
  /// `kernel`, when available, accelerates on-demand active-pair counts.
  /// `chemical_now`, when set, is read per interaction and stamped on every
  /// snapshot (the Gillespie host passes its exponential clock).
  explicit RecorderMonitor(Recorder& recorder,
                           const kernel::CompiledProtocol* kernel = nullptr,
                           std::function<double()> chemical_now = {})
      : recorder_(&recorder),
        kernel_(kernel),
        chemical_now_(std::move(chemical_now)) {}

  void on_start(const pp::Population& population,
                const pp::Protocol& protocol) override;
  void on_interaction(const pp::InteractionEvent& event,
                      const pp::Population& population) override;
  void on_finish(const pp::Population& population) override;

 private:
  double now() const { return chemical_now_ ? chemical_now_() : 0.0; }

  Recorder* recorder_;
  const kernel::CompiledProtocol* kernel_;
  std::function<double()> chemical_now_;
  /// Steps executed in earlier engine entries of the same trial; the
  /// engine's event.step restarts at 0 per run.
  std::uint64_t base_steps_ = 0;
  std::uint64_t last_abs_step_ = 0;
  bool begun_ = false;
};

class MonitorProbeAdapter final : public Probe {
 public:
  explicit MonitorProbeAdapter(pp::Monitor& monitor) : monitor_(&monitor) {}

  /// Count snapshots are ignored — the wrapped monitor sees the richer
  /// event stream directly.
  void on_sample(const Snapshot& snapshot) override { (void)snapshot; }
  pp::Monitor* as_monitor() override { return monitor_; }

 private:
  pp::Monitor* monitor_;
};

}  // namespace circles::obs
