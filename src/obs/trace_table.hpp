// TraceTable: the in-memory trajectory record every probe fills.
//
// A trace is a small rectangular table of doubles — one row per sample
// point, one named column per recorded quantity — deliberately dumb so the
// same value flows unchanged from a probe, through the BatchRunner's
// cross-trial envelopes, into CSV/JSONL artifacts and tests. Interaction
// indices are stored as doubles; they are exact up to 2^53, far beyond any
// simulated budget.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace circles::obs {

struct TraceTable {
  std::vector<std::string> columns;
  std::vector<double> data;  // row-major, rows x columns.size()

  TraceTable() = default;
  explicit TraceTable(std::vector<std::string> columns)
      : columns(std::move(columns)) {}

  std::size_t num_columns() const { return columns.size(); }
  std::size_t num_rows() const {
    return columns.empty() ? 0 : data.size() / columns.size();
  }
  bool empty() const { return data.empty(); }

  double at(std::size_t row, std::size_t col) const;
  std::span<const double> row(std::size_t row) const;

  /// Appends one row; the cell count must match the column count.
  void add_row(std::span<const double> cells);
  void add_row(std::initializer_list<double> cells) {
    add_row(std::span<const double>(cells.begin(), cells.size()));
  }

  /// Index of a named column; throws std::invalid_argument when missing.
  std::size_t column_index(const std::string& name) const;
  std::vector<double> column(std::size_t index) const;

  /// Sinks. CSV: one header row, full-precision %.17g cells. JSONL: one
  /// JSON object per row keyed by column name (no trailing newline games —
  /// every row ends in '\n', so `wc -l` counts samples).
  std::string to_csv() const;
  std::string to_jsonl() const;
  void write_csv(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

  bool operator==(const TraceTable&) const = default;
};

}  // namespace circles::obs
