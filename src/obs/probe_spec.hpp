// ProbeSpec: declarative probe description, the RunSpec-level face of obs/.
//
// A spec is a probe kind plus its sample grid, rendered as
// "energy@log:1024" — the format RunSpec::to_string round-trips and the
// sweep driver's --trace flag accepts. make_probe() materializes the
// concrete probe for one trial's protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "obs/grid.hpp"
#include "obs/probes.hpp"

namespace circles::obs {

struct ProbeSpec {
  enum class Kind {
    kCounts,       // CountsTrace over output opinions
    kStates,       // CountsTrace over raw states (small protocols)
    kEnergy,       // EnergyTrace (circles-family protocols)
    kActivePairs,  // ActivePairsTrace
    kConvergence,  // ConvergenceProbe
  };

  Kind kind = Kind::kEnergy;
  GridSpec grid;

  /// "energy@log:1024" (kind@grid, always fully rendered so parse inverts
  /// it exactly).
  std::string to_string() const;
  /// Accepts "energy", "counts@linear:256", "active@frac:0.1,0.9", ...
  static ProbeSpec parse(const std::string& text);

  bool operator==(const ProbeSpec&) const = default;
};

std::string to_string(ProbeSpec::Kind kind);

/// Builds the probe a spec describes for a concrete trial. `expected` feeds
/// ConvergenceProbe (the graded target symbol). Throws
/// std::invalid_argument when the probe cannot observe this protocol (e.g.
/// energy on a non-circles protocol).
std::unique_ptr<Probe> make_probe(const ProbeSpec& spec,
                                  const pp::Protocol& protocol,
                                  std::optional<pp::OutputSymbol> expected = {});

}  // namespace circles::obs
