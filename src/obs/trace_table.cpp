#include "obs/trace_table.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/check.hpp"

namespace circles::obs {

namespace {

/// Shared by the CSV and JSONL sinks. Deliberately NOT util::CsvWriter's
/// cell(double) (%.10g): traces feed regression comparisons, so a value
/// must survive the write/parse round trip bit-exactly (%.17g does;
/// column names are code-controlled identifiers, so no escaping either).
std::string format_cell(double v) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

double TraceTable::at(std::size_t row, std::size_t col) const {
  CIRCLES_CHECK_MSG(row < num_rows() && col < num_columns(),
                    "TraceTable cell out of range");
  return data[row * columns.size() + col];
}

std::span<const double> TraceTable::row(std::size_t row) const {
  CIRCLES_CHECK_MSG(row < num_rows(), "TraceTable row out of range");
  return {data.data() + row * columns.size(), columns.size()};
}

void TraceTable::add_row(std::span<const double> cells) {
  CIRCLES_CHECK_MSG(cells.size() == columns.size(),
                    "TraceTable row width does not match the header");
  data.insert(data.end(), cells.begin(), cells.end());
}

std::size_t TraceTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i] == name) return i;
  }
  throw std::invalid_argument("TraceTable has no column '" + name + "'");
}

std::vector<double> TraceTable::column(std::size_t index) const {
  CIRCLES_CHECK_MSG(index < num_columns(), "TraceTable column out of range");
  std::vector<double> out;
  out.reserve(num_rows());
  for (std::size_t r = 0; r < num_rows(); ++r) out.push_back(at(r, index));
  return out;
}

std::string TraceTable::to_csv() const {
  std::string out;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (c) out += ',';
    out += columns[c];
  }
  out += '\n';
  for (std::size_t r = 0; r < num_rows(); ++r) {
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out += ',';
      out += format_cell(at(r, c));
    }
    out += '\n';
  }
  return out;
}

std::string TraceTable::to_jsonl() const {
  std::string out;
  for (std::size_t r = 0; r < num_rows(); ++r) {
    out += '{';
    for (std::size_t c = 0; c < columns.size(); ++c) {
      if (c) out += ',';
      out += '"';
      out += columns[c];
      out += "\":";
      out += format_cell(at(r, c));
    }
    out += "}\n";
  }
  return out;
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open trace file: " + path);
  out << content;
  if (!out) throw std::runtime_error("failed writing trace file: " + path);
}

}  // namespace

void TraceTable::write_csv(const std::string& path) const {
  write_file(path, to_csv());
}

void TraceTable::write_jsonl(const std::string& path) const {
  write_file(path, to_jsonl());
}

}  // namespace circles::obs
