#include "obs/recorder.hpp"

#include "trace/trace.hpp"
#include "util/check.hpp"

namespace circles::obs {

void Recorder::add(Probe* probe, GridSpec grid) {
  CIRCLES_CHECK_MSG(probe != nullptr, "Recorder::add needs a probe");
  CIRCLES_CHECK_MSG(!begun_, "probes must be added before begin()");
  probes_.push_back(probe);
  entries_.push_back(Entry{probe, std::move(grid), {}, 0, -1.0});
}

void Recorder::begin(const ProbeContext& ctx,
                     std::span<const std::uint64_t> counts,
                     std::uint64_t active_pairs,
                     std::span<const pp::StateId> present,
                     std::span<const std::span<const std::uint64_t>> urns) {
  if (begun_) return;
  begun_ = true;
  ctx_ = ctx;

  bool need_active = false;
  for (Entry& entry : entries_) {
    if (options_.clock == RecorderOptions::Clock::kChemical) {
      entry.due = chemical_grid(entry.grid, options_.chemical_horizon);
    } else {
      const auto grid =
          interaction_grid(entry.grid, options_.interaction_horizon);
      entry.due.assign(grid.begin(), grid.end());
    }
    entry.cursor = 0;
    need_active = need_active || entry.probe->wants_active_pairs();
  }
  refresh_next_due();

  const Snapshot snapshot =
      make_snapshot(0, 0.0, counts, active_pairs, present, urns, need_active);
  for (Entry& entry : entries_) {
    entry.probe->on_begin(ctx_);
    entry.probe->on_sample(snapshot);
    entry.last_sampled = 0.0;
  }
}

Snapshot Recorder::make_snapshot(std::uint64_t interactions,
                                 double chemical_time,
                                 std::span<const std::uint64_t> counts,
                                 std::uint64_t active_pairs,
                                 std::span<const pp::StateId> present,
                                 std::span<const std::span<const std::uint64_t>> urns,
                                 bool need_active) const {
  Snapshot snapshot;
  snapshot.interactions = interactions;
  snapshot.chemical_time = chemical_time;
  snapshot.counts = counts;
  snapshot.active_pairs = active_pairs;
  snapshot.present = present;
  snapshot.urns = urns;
  snapshot.ctx = &ctx_;
  if (need_active && snapshot.active_pairs == kUnknownActive) {
    snapshot.active_pairs = active_pairs_from_counts(ctx_, counts, present);
  }
  return snapshot;
}

void Recorder::sample(std::uint64_t interactions, double chemical_time,
                      std::span<const std::uint64_t> counts,
                      std::uint64_t active_pairs,
                      std::span<const pp::StateId> present,
                      std::span<const std::span<const std::uint64_t>> urns) {
  CIRCLES_CHECK_MSG(begun_, "Recorder::advance before begin()");
  const double x = position(interactions, chemical_time);

  bool need_active = false;
  for (const Entry& entry : entries_) {
    if (entry.cursor < entry.due.size() && entry.due[entry.cursor] <= x &&
        entry.probe->wants_active_pairs()) {
      need_active = true;
    }
  }
  const Snapshot snapshot = make_snapshot(interactions, chemical_time, counts,
                                          active_pairs, present, urns,
                                          need_active);
  std::uint64_t sampled = 0;
  for (Entry& entry : entries_) {
    if (entry.cursor >= entry.due.size() || entry.due[entry.cursor] > x) {
      continue;
    }
    entry.probe->on_sample(snapshot);
    entry.last_sampled = x;
    sampled += 1;
    while (entry.cursor < entry.due.size() && entry.due[entry.cursor] <= x) {
      entry.cursor += 1;
    }
  }
  // Flushes are already grid-decimated, so one instant each stays cheap; it
  // lands on the sampling thread's track next to the engine spans.
  if (sampled > 0) {
    if (trace::TraceBuffer* tb = trace::buffer(options_.tracer)) {
      tb->instant("obs.flush", "probes", sampled);
    }
  }
  refresh_next_due();
}

void Recorder::finish(std::uint64_t interactions, double chemical_time,
                      std::span<const std::uint64_t> counts,
                      std::uint64_t active_pairs,
                      std::span<const pp::StateId> present,
                      std::span<const std::span<const std::uint64_t>> urns) {
  if (!begun_) return;
  const double x = position(interactions, chemical_time);

  bool need_active = false;
  for (const Entry& entry : entries_) {
    if (entry.probe->wants_active_pairs()) need_active = true;
  }
  const Snapshot snapshot = make_snapshot(interactions, chemical_time, counts,
                                          active_pairs, present, urns,
                                          need_active);
  for (Entry& entry : entries_) {
    // A batched host can rewind its reported index to the exact silence
    // point, so `x` may sit below the last emitted sample; never emit a
    // non-monotone row.
    if (x > entry.last_sampled) {
      entry.probe->on_sample(snapshot);
      entry.last_sampled = x;
      while (entry.cursor < entry.due.size() && entry.due[entry.cursor] <= x) {
        entry.cursor += 1;
      }
    }
    entry.probe->on_finish(snapshot);
  }
  refresh_next_due();
}

void Recorder::refresh_next_due() {
  double next = kNever;
  for (const Entry& entry : entries_) {
    if (entry.cursor < entry.due.size() && entry.due[entry.cursor] < next) {
      next = entry.due[entry.cursor];
    }
  }
  next_due_ = next;
}

}  // namespace circles::obs
