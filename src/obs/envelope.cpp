#include "obs/envelope.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "util/stats.hpp"

namespace circles::obs {

namespace {

std::string quantile_suffix(double q) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "_p%g", q * 100.0);
  return buffer;
}

}  // namespace

TraceTable envelope(std::span<const TraceTable> traces,
                    const EnvelopeOptions& options) {
  std::vector<const TraceTable*> pointers;
  pointers.reserve(traces.size());
  for (const TraceTable& trace : traces) pointers.push_back(&trace);
  return envelope(std::span<const TraceTable* const>(pointers), options);
}

TraceTable envelope(std::span<const TraceTable* const> traces,
                    const EnvelopeOptions& options) {
  std::vector<const TraceTable*> live;
  for (const TraceTable* trace : traces) {
    if (trace == nullptr || trace->num_rows() == 0) continue;
    if (!live.empty() && trace->columns != live.front()->columns) {
      throw std::invalid_argument(
          "envelope: traces carry different headers");
    }
    live.push_back(trace);
  }
  if (live.empty()) return TraceTable{};

  const std::size_t x_col = live.front()->column_index(options.x_column);
  const std::size_t width = live.front()->num_columns();
  std::vector<bool> skip(width, false);
  skip[x_col] = true;
  for (const std::string& name : options.exclude_columns) {
    for (std::size_t c = 0; c < width; ++c) {
      if (live.front()->columns[c] == name) skip[c] = true;
    }
  }

  double x_max = options.x_max;
  if (x_max <= 0.0) {
    for (const TraceTable* trace : live) {
      x_max = std::max(x_max, trace->at(trace->num_rows() - 1, x_col));
    }
  }
  std::vector<double> grid;
  if (!options.grid_fractions.empty()) {
    grid.push_back(0.0);
    std::vector<double> fractions = options.grid_fractions;
    std::sort(fractions.begin(), fractions.end());
    for (const double f : fractions) {
      const double v = f * x_max;
      if (v > grid.back()) grid.push_back(v);
    }
  } else {
    grid = envelope_grid(options.spacing, options.points, x_max);
  }

  std::vector<std::string> columns{options.x_column};
  for (std::size_t c = 0; c < width; ++c) {
    if (skip[c]) continue;
    for (const double q : options.quantiles) {
      columns.push_back(live.front()->columns[c] + quantile_suffix(q));
    }
  }
  TraceTable out(std::move(columns));

  // Per trace: the row index of the last sample at or before the current
  // grid point (last observation carried forward; every trace starts at its
  // first row even if the grid point precedes it).
  std::vector<std::size_t> cursor(live.size(), 0);
  std::vector<double> row;
  std::vector<double> values(live.size());
  for (const double g : grid) {
    row.clear();
    row.push_back(g);
    for (std::size_t t = 0; t < live.size(); ++t) {
      const TraceTable& trace = *live[t];
      while (cursor[t] + 1 < trace.num_rows() &&
             trace.at(cursor[t] + 1, x_col) <= g) {
        cursor[t] += 1;
      }
    }
    for (std::size_t c = 0; c < width; ++c) {
      if (skip[c]) continue;
      for (std::size_t t = 0; t < live.size(); ++t) {
        values[t] = live[t]->at(cursor[t], c);
      }
      std::sort(values.begin(), values.end());
      for (const double q : options.quantiles) {
        row.push_back(util::quantile_sorted(values, q));
      }
    }
    out.add_row(row);
  }
  return out;
}

}  // namespace circles::obs
