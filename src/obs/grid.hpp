// Adaptive decimation: where along a run the Recorder takes samples.
//
// A 4e11-interaction run cannot be recorded per interaction; a GridSpec
// names ~1k sample points over the run's horizon — linearly spaced, log
// spaced (geometric, the natural axis for descent curves), or an explicit
// list of horizon fractions (--sample-points=0.1,0.5,0.9). Grids are
// materialized once per trial; the per-interaction cost of observation is a
// single comparison against the next due point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace circles::obs {

struct GridSpec {
  enum class Spacing { kLinear, kLog };

  Spacing spacing = Spacing::kLog;
  std::uint32_t points = 1024;
  /// When non-empty, overrides spacing/points: sample at these fractions of
  /// the horizon (each clamped into (0, 1]).
  std::vector<double> fractions;

  /// "log:1024", "linear:256", "frac:0.1,0.5,0.9". parse() inverts it and
  /// also accepts bare "log"/"linear" (default point count).
  std::string to_string() const;
  static GridSpec parse(const std::string& text);

  bool operator==(const GridSpec&) const = default;
};

/// Sample points over an interaction budget: ascending, unique, in
/// [1, horizon]. The initial configuration (index 0) is always sampled
/// separately by the Recorder, so 0 never appears. When points exceeds the
/// horizon the grid collapses to every index once (never duplicates).
std::vector<std::uint64_t> interaction_grid(const GridSpec& spec,
                                            std::uint64_t horizon);

/// Sample points over a chemical-time horizon: ascending, unique, in
/// (0, horizon]. Log spacing is geometric from horizon * 1e-6 (chemical
/// time has no natural smallest unit; one interaction takes ~1/n expected
/// time, far below any practical horizon fraction).
std::vector<double> chemical_grid(const GridSpec& spec, double horizon);

/// Resampling grid for cross-trial envelopes: `points + 1` ascending values
/// from 0 to x_max inclusive (log spacing: 0, then geometric 1 → x_max).
std::vector<double> envelope_grid(GridSpec::Spacing spacing,
                                  std::size_t points, double x_max);

}  // namespace circles::obs
