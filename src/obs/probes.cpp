#include "obs/probes.hpp"

#include <algorithm>
#include <stdexcept>

#include "kernel/compiled_protocol.hpp"
#include "pp/protocol.hpp"
#include "util/check.hpp"

namespace circles::obs {

namespace {

/// Visits every (state, count > 0) of a snapshot, honouring the present
/// hint (which may contain stale zero-count entries) when available.
template <typename Fn>
void for_each_present(const Snapshot& snapshot, Fn&& fn) {
  if (!snapshot.present.empty()) {
    for (const pp::StateId s : snapshot.present) {
      if (snapshot.counts[s] > 0) fn(s, snapshot.counts[s]);
    }
    return;
  }
  for (std::size_t s = 0; s < snapshot.counts.size(); ++s) {
    if (snapshot.counts[s] > 0) fn(static_cast<pp::StateId>(s),
                                   snapshot.counts[s]);
  }
}

pp::OutputSymbol output_of(const Snapshot& snapshot, pp::StateId state) {
  if (snapshot.ctx->kernel != nullptr) return snapshot.ctx->kernel->output(state);
  return snapshot.ctx->protocol->output(state);
}

}  // namespace

void TraceProbe::start_table(std::vector<std::string> value_columns) {
  std::vector<std::string> columns{"interactions", "chemical_time"};
  columns.insert(columns.end(), value_columns.begin(), value_columns.end());
  table_ = TraceTable(std::move(columns));
}

void TraceProbe::add_sample_row(const Snapshot& snapshot,
                                std::span<const double> values) {
  row_scratch_.clear();
  row_scratch_.push_back(static_cast<double>(snapshot.interactions));
  row_scratch_.push_back(snapshot.chemical_time);
  row_scratch_.insert(row_scratch_.end(), values.begin(), values.end());
  table_.add_row(row_scratch_);
}

// --- CountsTrace -----------------------------------------------------------

void CountsTrace::on_begin(const ProbeContext& ctx) {
  std::vector<std::string> columns;
  if (projection_ == Projection::kOutputs) {
    const std::uint32_t symbols = ctx.protocol->num_output_symbols();
    for (std::uint32_t s = 0; s < symbols; ++s) {
      columns.push_back("out_" + std::to_string(s));
    }
  } else {
    const std::uint64_t states = ctx.protocol->num_states();
    if (states > kMaxStateColumns) {
      throw std::invalid_argument(
          "CountsTrace state projection over " + std::to_string(states) +
          " states (cap " + std::to_string(kMaxStateColumns) +
          "); use the output projection");
    }
    for (std::uint64_t s = 0; s < states; ++s) {
      columns.push_back("state_" + std::to_string(s));
    }
  }
  scratch_.assign(columns.size(), 0.0);
  start_table(std::move(columns));
}

void CountsTrace::on_sample(const Snapshot& snapshot) {
  std::fill(scratch_.begin(), scratch_.end(), 0.0);
  if (projection_ == Projection::kOutputs) {
    for_each_present(snapshot, [&](pp::StateId s, std::uint64_t c) {
      scratch_[output_of(snapshot, s)] += static_cast<double>(c);
    });
  } else {
    for_each_present(snapshot, [&](pp::StateId s, std::uint64_t c) {
      scratch_[s] = static_cast<double>(c);
    });
  }
  add_sample_row(snapshot, scratch_);
}

// --- EnergyTrace -----------------------------------------------------------

EnergyTrace::EnergyTrace(std::vector<std::uint32_t> weights, std::uint32_t k)
    : weights_(std::move(weights)), k_(k) {
  CIRCLES_CHECK_MSG(!weights_.empty(), "EnergyTrace needs state weights");
}

EnergyTrace EnergyTrace::for_circles(const core::CirclesProtocol& protocol) {
  std::vector<std::uint32_t> weights(protocol.num_states());
  for (std::uint64_t s = 0; s < weights.size(); ++s) {
    weights[s] = core::weight(
        protocol.decode(static_cast<pp::StateId>(s)).braket, protocol.k());
  }
  return EnergyTrace(std::move(weights), protocol.k());
}

void EnergyTrace::on_begin(const ProbeContext& ctx) {
  CIRCLES_CHECK_MSG(ctx.protocol->num_states() == weights_.size(),
                    "EnergyTrace weights do not match the protocol");
  start_table({"total_energy", "min_weight", "diagonal_agents"});
}

void EnergyTrace::on_sample(const Snapshot& snapshot) {
  std::uint64_t total = 0;
  std::uint32_t min_weight = k_;
  std::uint64_t diagonal = 0;
  for_each_present(snapshot, [&](pp::StateId s, std::uint64_t c) {
    const std::uint32_t w = weights_[s];
    total += c * w;
    min_weight = std::min(min_weight, w);
    if (w == k_) diagonal += c;
  });
  const double row[] = {static_cast<double>(total),
                        static_cast<double>(min_weight),
                        static_cast<double>(diagonal)};
  add_sample_row(snapshot, row);
}

// --- ActivePairsTrace ------------------------------------------------------

void ActivePairsTrace::on_begin(const ProbeContext& ctx) {
  (void)ctx;
  start_table({"active_pairs", "active_fraction"});
}

void ActivePairsTrace::on_sample(const Snapshot& snapshot) {
  CIRCLES_CHECK_MSG(snapshot.active_pairs != kUnknownActive,
                    "ActivePairsTrace needs an active-pair count");
  const double n = static_cast<double>(snapshot.ctx->n);
  const double pairs = n * (n - 1.0);
  const double row[] = {
      static_cast<double>(snapshot.active_pairs),
      pairs > 0.0 ? static_cast<double>(snapshot.active_pairs) / pairs : 0.0};
  add_sample_row(snapshot, row);
}

// --- ConvergenceProbe ------------------------------------------------------

void ConvergenceProbe::on_begin(const ProbeContext& ctx) {
  histogram_.assign(ctx.protocol->num_output_symbols(), 0);
  candidate_ = false;
  converged_ = false;
  start_table({"leader_ok"});
}

bool ConvergenceProbe::leader_ok(const Snapshot& snapshot) {
  if (!expected_.has_value()) return false;
  std::fill(histogram_.begin(), histogram_.end(), 0);
  for_each_present(snapshot, [&](pp::StateId s, std::uint64_t c) {
    histogram_[output_of(snapshot, s)] += c;
  });
  const std::uint64_t own = histogram_[*expected_];
  if (own == 0) return false;
  for (pp::OutputSymbol s = 0; s < histogram_.size(); ++s) {
    if (s != *expected_ && histogram_[s] >= own) return false;
  }
  return true;
}

void ConvergenceProbe::on_sample(const Snapshot& snapshot) {
  const bool ok = leader_ok(snapshot);
  if (ok && !candidate_) {
    candidate_ = true;
    first_correct_interactions_ = snapshot.interactions;
    first_correct_chemical_ = snapshot.chemical_time;
  } else if (!ok) {
    candidate_ = false;
  }
  const double row[] = {ok ? 1.0 : 0.0};
  add_sample_row(snapshot, row);
}

void ConvergenceProbe::on_finish(const Snapshot& snapshot) {
  (void)snapshot;
  converged_ = candidate_;
}

}  // namespace circles::obs
