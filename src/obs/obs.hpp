// Umbrella header for the observation subsystem.
#pragma once

#include "obs/envelope.hpp"      // IWYU pragma: export
#include "obs/grid.hpp"          // IWYU pragma: export
#include "obs/monitor_probe.hpp" // IWYU pragma: export
#include "obs/probe.hpp"         // IWYU pragma: export
#include "obs/probe_spec.hpp"    // IWYU pragma: export
#include "obs/probes.hpp"        // IWYU pragma: export
#include "obs/recorder.hpp"      // IWYU pragma: export
#include "obs/trace_table.hpp"   // IWYU pragma: export
