#include "obs/probe.hpp"

#include "kernel/compiled_protocol.hpp"
#include "pp/protocol.hpp"
#include "util/check.hpp"

namespace circles::obs {

std::uint64_t active_pairs_from_counts(const ProbeContext& ctx,
                                       std::span<const std::uint64_t> counts,
                                       std::span<const pp::StateId> present) {
  CIRCLES_CHECK_MSG(ctx.protocol != nullptr || ctx.kernel != nullptr,
                    "active-pair count needs a protocol or kernel");
  std::vector<pp::StateId> scratch;
  if (present.empty()) {
    for (std::size_t s = 0; s < counts.size(); ++s) {
      if (counts[s] > 0) scratch.push_back(static_cast<pp::StateId>(s));
    }
    present = scratch;
  }

  std::uint64_t sum = 0;
  const kernel::CompiledProtocol* k = ctx.kernel;
  if (k != nullptr && k->has_adjacency()) {
    for (const pp::StateId s : present) {
      if (counts[s] == 0) continue;
      for (const pp::StateId t : k->active_responders(s)) {
        sum += counts[s] * (counts[t] - (s == t ? 1 : 0));
      }
    }
    return sum;
  }
  for (const pp::StateId s : present) {
    if (counts[s] == 0) continue;
    for (const pp::StateId t : present) {
      if (counts[t] == 0) continue;
      bool nonnull;
      if (k != nullptr) {
        nonnull = k->nonnull(s, t);
      } else {
        const pp::Transition tr = ctx.protocol->transition(s, t);
        nonnull = tr.initiator != s || tr.responder != t;
      }
      if (nonnull) sum += counts[s] * (counts[t] - (s == t ? 1 : 0));
    }
  }
  return sum;
}

}  // namespace circles::obs
