#include "obs/probe_spec.hpp"

#include <stdexcept>

#include "core/circles_protocol.hpp"

namespace circles::obs {

std::string to_string(ProbeSpec::Kind kind) {
  switch (kind) {
    case ProbeSpec::Kind::kCounts:
      return "counts";
    case ProbeSpec::Kind::kStates:
      return "states";
    case ProbeSpec::Kind::kEnergy:
      return "energy";
    case ProbeSpec::Kind::kActivePairs:
      return "active";
    case ProbeSpec::Kind::kConvergence:
      return "convergence";
  }
  return "?";
}

std::string ProbeSpec::to_string() const {
  return obs::to_string(kind) + "@" + grid.to_string();
}

ProbeSpec ProbeSpec::parse(const std::string& text) {
  ProbeSpec spec;
  const auto at = text.find('@');
  const std::string head = text.substr(0, at);
  if (head == "counts") {
    spec.kind = Kind::kCounts;
  } else if (head == "states") {
    spec.kind = Kind::kStates;
  } else if (head == "energy") {
    spec.kind = Kind::kEnergy;
  } else if (head == "active") {
    spec.kind = Kind::kActivePairs;
  } else if (head == "convergence") {
    spec.kind = Kind::kConvergence;
  } else {
    throw std::invalid_argument(
        "unknown probe '" + text +
        "' (expected counts, states, energy, active or convergence, "
        "optionally @<grid> like energy@log:1024)");
  }
  if (at != std::string::npos) {
    spec.grid = GridSpec::parse(text.substr(at + 1));
  }
  return spec;
}

std::unique_ptr<Probe> make_probe(const ProbeSpec& spec,
                                  const pp::Protocol& protocol,
                                  std::optional<pp::OutputSymbol> expected) {
  switch (spec.kind) {
    case ProbeSpec::Kind::kCounts:
      return std::make_unique<CountsTrace>(CountsTrace::Projection::kOutputs);
    case ProbeSpec::Kind::kStates:
      // Enforced again at on_begin() for directly-constructed probes, but
      // checked here so RunSpec validation fails up front, not in a worker.
      if (protocol.num_states() > CountsTrace::kMaxStateColumns) {
        throw std::invalid_argument(
            "states probe over " + std::to_string(protocol.num_states()) +
            " states (cap " + std::to_string(CountsTrace::kMaxStateColumns) +
            "); use the counts probe (output projection)");
      }
      return std::make_unique<CountsTrace>(CountsTrace::Projection::kStates);
    case ProbeSpec::Kind::kEnergy: {
      const auto* circles =
          dynamic_cast<const core::CirclesProtocol*>(&protocol);
      if (circles == nullptr) {
        throw std::invalid_argument(
            "energy probe requires the circles protocol (its weight "
            "function decodes bra-kets); protocol '" + protocol.name() +
            "' has none");
      }
      return std::make_unique<EnergyTrace>(EnergyTrace::for_circles(*circles));
    }
    case ProbeSpec::Kind::kActivePairs:
      return std::make_unique<ActivePairsTrace>();
    case ProbeSpec::Kind::kConvergence:
      return std::make_unique<ConvergenceProbe>(expected);
  }
  throw std::logic_error("unknown probe kind");
}

}  // namespace circles::obs
