// Cross-trial trace aggregation: quantile envelopes on a common grid.
//
// Per-trial traces land on different x positions (batched epochs end where
// their collision draws say, silence times vary), so curves cannot be
// averaged row-by-row. envelope() resamples every trace onto one grid —
// traces are step functions of the run, so resampling is
// last-observation-carried-forward — and reports per-point quantiles
// (median/p10/p90 by default) across trials for every value column.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "obs/grid.hpp"
#include "obs/trace_table.hpp"

namespace circles::obs {

struct EnvelopeOptions {
  /// Ascending quantiles to report per grid point.
  std::vector<double> quantiles{0.1, 0.5, 0.9};
  /// Resampling grid resolution and spacing.
  std::size_t points = 256;
  GridSpec::Spacing spacing = GridSpec::Spacing::kLinear;
  /// When non-empty, overrides points/spacing: resample at 0 plus these
  /// fractions of x_max (the envelope face of a frac: sample grid).
  std::vector<double> grid_fractions;
  /// Which column is the x axis ("interactions" or "chemical_time").
  std::string x_column = "interactions";
  /// Grid endpoint; 0 derives it from the traces (max final x). Fix it
  /// explicitly to compare envelopes from different runs point-by-point.
  double x_max = 0.0;
  /// Columns to drop from the output (e.g. the clock column that is NOT
  /// the x axis); names not present in the traces are ignored.
  std::vector<std::string> exclude_columns;
};

/// Aggregates traces with identical headers into one table: column 0 is the
/// x axis, followed by <col>_p10, <col>_p50, ... for every non-x column.
/// Traces without rows are skipped; no traces with rows yields an empty
/// table. Throws std::invalid_argument on mismatched headers or a missing
/// x column. The pointer overload aggregates in place (no copies) —
/// what the BatchRunner uses over its per-trial records.
TraceTable envelope(std::span<const TraceTable> traces,
                    const EnvelopeOptions& options = {});
TraceTable envelope(std::span<const TraceTable* const> traces,
                    const EnvelopeOptions& options = {});

}  // namespace circles::obs
