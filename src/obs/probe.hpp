// Probe: backend-agnostic run observation over count-level snapshots.
//
// pp::Monitor sees per-AgentId interaction events and therefore only exists
// on the agent-array backend; the dense engines that make n = 1e7 runs
// feasible never materialize agents at all. A Probe instead receives what
// every backend has — the per-state count vector, the interaction index and
// (where tracked) the chemical clock — at the decimated cadence of a
// Recorder, so one observation pipeline serves pp::Engine, both DenseEngine
// modes and the Gillespie loop.
#pragma once

#include <cstdint>
#include <span>

#include "obs/trace_table.hpp"
#include "pp/types.hpp"

namespace circles::pp {
class Monitor;
class Protocol;
}  // namespace circles::pp

namespace circles::kernel {
class CompiledProtocol;
}

namespace circles::obs {

/// Static facts about the run being observed; valid for its whole duration.
struct ProbeContext {
  const pp::Protocol* protocol = nullptr;
  /// Compiled kernel when the host has one (adjacency-accelerated
  /// active-pair counts, output-table lookups); may be null.
  const kernel::CompiledProtocol* kernel = nullptr;
  std::uint64_t n = 0;
  /// Per-urn partition sizes when the host simulates a clustered population
  /// (dense multi-urn runs); empty on unpartitioned hosts. Index-aligned
  /// with Snapshot::urns.
  std::span<const std::uint64_t> urn_sizes;
};

/// Sentinel: the host did not supply an active-pair count.
inline constexpr std::uint64_t kUnknownActive = ~std::uint64_t{0};

/// One count-level observation.
struct Snapshot {
  /// Interactions executed so far (0 = initial configuration).
  std::uint64_t interactions = 0;
  /// Chemical clock, 0.0 on backends without continuous-time semantics.
  double chemical_time = 0.0;
  /// Per-state counts, indexed by StateId, size num_states.
  std::span<const std::uint64_t> counts;
  /// Ordered agent pairs whose interaction would change a state (exact
  /// silence clock: 0 iff silent), or kUnknownActive. The Recorder computes
  /// it on demand for probes that want_active_pairs().
  std::uint64_t active_pairs = kUnknownActive;
  /// States possibly present — a superset hint that may contain stale
  /// zero-count entries; empty means unknown (scan all counts).
  std::span<const pp::StateId> present;
  /// Per-urn per-state counts (one span per urn, each sized num_states) when
  /// the host partitions the population into urns — clustered dense runs;
  /// empty on unpartitioned hosts. `counts` holds the aggregate either way,
  /// so probes that ignore this field work unchanged on every backend.
  std::span<const std::span<const std::uint64_t>> urns;
  const ProbeContext* ctx = nullptr;
};

class Probe {
 public:
  virtual ~Probe() = default;

  /// Called once before the initial sample.
  virtual void on_begin(const ProbeContext& ctx) { (void)ctx; }

  /// Called at every sample point the probe's grid selects, plus once for
  /// the initial configuration and once for the final one.
  virtual void on_sample(const Snapshot& snapshot) = 0;

  /// Called when the run ends, with the final snapshot. Re-callable: hosts
  /// that re-enter the engine (fault-injection bursts) finish after every
  /// segment, and the last call wins.
  virtual void on_finish(const Snapshot& snapshot) { (void)snapshot; }

  /// Opt into Snapshot::active_pairs (the Recorder pays O(present^2) per
  /// sample to compute it when the host cannot supply it for free).
  virtual bool wants_active_pairs() const { return false; }

  /// Event-level escape hatch for the agent backend: when non-null, hosts
  /// with real interaction events (pp::Engine) attach this monitor alongside
  /// the count pipeline. Count-only backends ignore it — see
  /// MonitorProbeAdapter for the compatibility story.
  virtual pp::Monitor* as_monitor() { return nullptr; }

  /// The probe's recorded trajectory, or null for probes that only expose
  /// scalars or wrap monitors.
  virtual const TraceTable* table() const { return nullptr; }

  /// Moves the trajectory out (end-of-trial harvest; the probe is done).
  /// Default copies table(), or yields an empty table for table-less probes.
  virtual TraceTable take_table() {
    return table() != nullptr ? *table() : TraceTable{};
  }
};

/// Number of active ordered pairs of a configuration given as counts:
/// sum over non-null (s, t) of c_s * (c_t - [s == t]). Uses the kernel's
/// adjacency index when available, virtual transition() calls otherwise.
/// `present` is the optional superset hint from a Snapshot.
std::uint64_t active_pairs_from_counts(
    const ProbeContext& ctx, std::span<const std::uint64_t> counts,
    std::span<const pp::StateId> present = {});

}  // namespace circles::obs
