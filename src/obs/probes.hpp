// Built-in probes: the observations every experiment in the paper needs.
//
//  * CountsTrace       — state-count (or output-opinion) time series.
//  * EnergyTrace       — the paper's energy potential, computed from counts:
//                        scalar total energy Σ w(s)·c_s, the minimum present
//                        weight, and the diagonal population. Works on every
//                        backend, unlike core::EnergyTraceMonitor.
//  * ActivePairsTrace  — the exact silence clock (active ordered pairs).
//  * ConvergenceProbe  — first time the plurality opinion is correct and
//                        stays correct (at sample-grid resolution).
//
// All probes fill a TraceTable whose first two columns are "interactions"
// and "chemical_time", so one envelope/sink pipeline serves all of them.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/circles_protocol.hpp"
#include "obs/probe.hpp"

namespace circles::obs {

/// Shared row plumbing: owns the table and prefixes every row with the
/// snapshot's x coordinates.
class TraceProbe : public Probe {
 public:
  const TraceTable* table() const override { return &table_; }
  TraceTable take_table() override { return std::move(table_); }

 protected:
  /// Sets the header to interactions, chemical_time, value_columns...
  void start_table(std::vector<std::string> value_columns);
  void add_sample_row(const Snapshot& snapshot,
                      std::span<const double> values);

  TraceTable table_;

 private:
  std::vector<double> row_scratch_;
};

class CountsTrace final : public TraceProbe {
 public:
  enum class Projection {
    kOutputs,  // one column per output symbol: agents announcing it
    kStates,   // one column per state (small protocols only)
  };

  explicit CountsTrace(Projection projection = Projection::kOutputs)
      : projection_(projection) {}

  void on_begin(const ProbeContext& ctx) override;
  void on_sample(const Snapshot& snapshot) override;

  /// kStates refuses protocols wider than this (the circles protocol at
  /// k = 16 already has 4096 states; a row per sample point times that many
  /// columns is where "trace" stops meaning anything).
  static constexpr std::uint64_t kMaxStateColumns = 4096;

 private:
  Projection projection_;
  std::vector<double> scratch_;
};

class EnergyTrace final : public TraceProbe {
 public:
  /// `weights[s]` is the paper's weight of state s; `k` is the diagonal
  /// weight (weights equal to k count as diagonal agents).
  EnergyTrace(std::vector<std::uint32_t> weights, std::uint32_t k);

  /// The standard instantiation: w(⟨i|j⟩) from the protocol's bra-ket
  /// decode, independent of the out field.
  static EnergyTrace for_circles(const core::CirclesProtocol& protocol);

  void on_begin(const ProbeContext& ctx) override;
  void on_sample(const Snapshot& snapshot) override;

  const std::vector<std::uint32_t>& weights() const { return weights_; }

 private:
  std::vector<std::uint32_t> weights_;
  std::uint32_t k_;
};

class ActivePairsTrace final : public TraceProbe {
 public:
  void on_begin(const ProbeContext& ctx) override;
  void on_sample(const Snapshot& snapshot) override;
  bool wants_active_pairs() const override { return true; }
};

class ConvergenceProbe final : public TraceProbe {
 public:
  /// `expected` is the output symbol the run should converge to (the
  /// workload's plurality winner, or a tie symbol under tie grading).
  /// nullopt — e.g. a tied workload under plain grading — never converges.
  explicit ConvergenceProbe(std::optional<pp::OutputSymbol> expected)
      : expected_(expected) {}

  void on_begin(const ProbeContext& ctx) override;
  void on_sample(const Snapshot& snapshot) override;
  void on_finish(const Snapshot& snapshot) override;

  /// Valid after the run: the expected symbol was the strict plurality
  /// opinion at the end and at every sample since first_correct_*.
  bool converged() const { return converged_; }
  std::uint64_t first_correct_interactions() const {
    return first_correct_interactions_;
  }
  double first_correct_chemical_time() const {
    return first_correct_chemical_;
  }

 private:
  bool leader_ok(const Snapshot& snapshot);

  std::optional<pp::OutputSymbol> expected_;
  std::vector<std::uint64_t> histogram_;
  /// True iff the latest sample was correct AND every sample since
  /// first_correct_* was too (reset to false by any incorrect sample).
  bool candidate_ = false;
  bool converged_ = false;
  std::uint64_t first_correct_interactions_ = 0;
  double first_correct_chemical_ = 0.0;
};

}  // namespace circles::obs
