// Recorder: fans decimated count snapshots out to a set of probes.
//
// The host (any engine) calls begin() once, advance() whenever convenient —
// per interaction on exact backends, per epoch in batched mode — and
// finish() at the end. Each probe samples on its own GridSpec; between due
// points advance() is a single comparison, which is what keeps observation
// under the <10% overhead budget even in per-interaction loops.
//
// Sampling semantics per probe: the initial configuration (x = 0) is always
// sampled; thereafter ONE sample fires whenever advance() first reaches or
// passes a due point, carrying the host's actual position (exact interaction
// index and current counts — batched hosts therefore sample at epoch
// boundaries rather than pretending mid-epoch counts exist); all due points
// at or below that position are then consumed. finish() emits a final
// sample when the run ended past the last one, then calls on_finish().
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/grid.hpp"
#include "obs/probe.hpp"

namespace circles::trace {
class Tracer;
}

namespace circles::obs {

struct RecorderOptions {
  enum class Clock {
    kInteractions,  // due points are interaction indices
    kChemical,      // due points are chemical times (Gillespie hosts)
  };
  Clock clock = Clock::kInteractions;

  /// Grid horizon under kInteractions: the run's interaction budget.
  std::uint64_t interaction_horizon = 0;
  /// Grid horizon under kChemical: the expected chemical time at budget
  /// (budget / n for uniform-rate kinetics).
  double chemical_horizon = 0.0;

  /// Span tracer (see src/trace/): each probe flush emits one instant on the
  /// sampling thread's track. Null = tracing off; sampling itself is never
  /// affected (tracing is observation-only by contract).
  trace::Tracer* tracer = nullptr;
};

class Recorder {
 public:
  explicit Recorder(RecorderOptions options = {}) : options_(options) {}

  /// Registers a probe sampling on `grid`. Non-owning; the probe must
  /// outlive the recorder's run.
  void add(Probe* probe, GridSpec grid = {});

  std::span<Probe* const> probes() const { return probes_; }
  const RecorderOptions& options() const { return options_; }

  // --- host API -----------------------------------------------------------

  /// Materializes the grids and emits the initial sample (x = 0) to every
  /// probe. Idempotent: engine re-entry (fault bursts) begins only once.
  /// `urns`, on every host entry point, is the optional per-urn count matrix
  /// of partitioned (clustered dense) hosts — see Snapshot::urns.
  void begin(const ProbeContext& ctx, std::span<const std::uint64_t> counts,
             std::uint64_t active_pairs = kUnknownActive,
             std::span<const pp::StateId> present = {},
             std::span<const std::span<const std::uint64_t>> urns = {});

  /// Hot-path notification; returns immediately unless a probe is due.
  void advance(std::uint64_t interactions, double chemical_time,
               std::span<const std::uint64_t> counts,
               std::uint64_t active_pairs = kUnknownActive,
               std::span<const pp::StateId> present = {},
               std::span<const std::span<const std::uint64_t>> urns = {}) {
    if (position(interactions, chemical_time) < next_due_) return;
    sample(interactions, chemical_time, counts, active_pairs, present, urns);
  }

  /// Final sample (if the run ended past each probe's last one) plus
  /// on_finish() fan-out. Re-callable; see Probe::on_finish.
  void finish(std::uint64_t interactions, double chemical_time,
              std::span<const std::uint64_t> counts,
              std::uint64_t active_pairs = kUnknownActive,
              std::span<const pp::StateId> present = {},
              std::span<const std::span<const std::uint64_t>> urns = {});

 private:
  struct Entry {
    Probe* probe;
    GridSpec grid;
    std::vector<double> due;  // ascending sample positions
    std::size_t cursor = 0;
    double last_sampled = -1.0;
  };

  double position(std::uint64_t interactions, double chemical_time) const {
    return options_.clock == RecorderOptions::Clock::kChemical
               ? chemical_time
               : static_cast<double>(interactions);
  }

  Snapshot make_snapshot(std::uint64_t interactions, double chemical_time,
                         std::span<const std::uint64_t> counts,
                         std::uint64_t active_pairs,
                         std::span<const pp::StateId> present,
                         std::span<const std::span<const std::uint64_t>> urns,
                         bool need_active) const;

  void sample(std::uint64_t interactions, double chemical_time,
              std::span<const std::uint64_t> counts,
              std::uint64_t active_pairs,
              std::span<const pp::StateId> present,
              std::span<const std::span<const std::uint64_t>> urns);

  void refresh_next_due();

  RecorderOptions options_;
  std::vector<Probe*> probes_;
  std::vector<Entry> entries_;
  ProbeContext ctx_;
  bool begun_ = false;
  /// Position of the next due sample across all probes; +inf when none
  /// (before begin() and after all grids are exhausted).
  double next_due_ = kNever;

  static constexpr double kNever = 1.0e308;
};

}  // namespace circles::obs
